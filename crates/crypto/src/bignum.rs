//! Arbitrary-precision unsigned integers for the public-key substrate.
//!
//! The thesis uses the SFS Rabin-Williams cryptosystem with a 1024-bit
//! modulus to sign new-key and recovery messages and to establish session
//! keys (§6.1). We build the same capability from scratch: a compact
//! big-unsigned-integer type with schoolbook multiplication, Knuth
//! Algorithm D division, modular exponentiation, Miller-Rabin primality
//! testing, and prime generation. Performance is secondary to correctness —
//! what the evaluation measures is the *gap* between public-key and
//! symmetric-key operations, and any honest bignum preserves that gap.

use rand::{Rng, RngExt};

/// An arbitrary-precision unsigned integer (little-endian `u32` limbs).
#[derive(Clone, PartialEq, Eq, Default)]
pub struct BigUint {
    /// Little-endian limbs with no trailing zeros (canonical form).
    limbs: Vec<u32>,
}

impl std::fmt::Debug for BigUint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BigUint(0x")?;
        if self.limbs.is_empty() {
            write!(f, "0")?;
        } else {
            for (i, limb) in self.limbs.iter().rev().enumerate() {
                if i == 0 {
                    write!(f, "{limb:x}")?;
                } else {
                    write!(f, "{limb:08x}")?;
                }
            }
        }
        write!(f, ")")
    }
}

impl BigUint {
    /// The value zero.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// The value one.
    pub fn one() -> Self {
        BigUint { limbs: vec![1] }
    }

    /// Builds from a `u64`.
    pub fn from_u64(v: u64) -> Self {
        let mut n = BigUint {
            limbs: vec![v as u32, (v >> 32) as u32],
        };
        n.normalize();
        n
    }

    /// Builds from big-endian bytes.
    pub fn from_bytes_be(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len().div_ceil(4));
        let mut iter = bytes.rchunks(4);
        for chunk in &mut iter {
            let mut limb = 0u32;
            for &b in chunk {
                limb = (limb << 8) | b as u32;
            }
            limbs.push(limb);
        }
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// Serializes to minimal big-endian bytes (empty for zero).
    pub fn to_bytes_be(&self) -> Vec<u8> {
        if self.is_zero() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.limbs.len() * 4);
        for limb in self.limbs.iter().rev() {
            out.extend_from_slice(&limb.to_be_bytes());
        }
        // Trim leading zero bytes.
        let first = out.iter().position(|&b| b != 0).unwrap_or(out.len());
        out.drain(..first);
        out
    }

    /// Returns true for the value zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// Returns true for the value one.
    pub fn is_one(&self) -> bool {
        self.limbs == [1]
    }

    /// Returns true if the value is even.
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Number of significant bits.
    pub fn bit_len(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(top) => self.limbs.len() * 32 - top.leading_zeros() as usize,
        }
    }

    /// Returns bit `i` (little-endian bit order).
    pub fn bit(&self, i: usize) -> bool {
        let (limb, off) = (i / 32, i % 32);
        self.limbs.get(limb).is_some_and(|l| (l >> off) & 1 == 1)
    }

    fn normalize(&mut self) {
        while self.limbs.last() == Some(&0) {
            self.limbs.pop();
        }
    }

    /// Three-way comparison.
    pub fn cmp_val(&self, other: &Self) -> std::cmp::Ordering {
        use std::cmp::Ordering;
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {}
            ord => return ord,
        }
        for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
            match a.cmp(b) {
                Ordering::Equal => {}
                ord => return ord,
            }
        }
        Ordering::Equal
    }

    /// `self + other`.
    pub fn add(&self, other: &Self) -> Self {
        let (long, short) = if self.limbs.len() >= other.limbs.len() {
            (&self.limbs, &other.limbs)
        } else {
            (&other.limbs, &self.limbs)
        };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for (i, &limb) in long.iter().enumerate() {
            let sum = limb as u64 + *short.get(i).unwrap_or(&0) as u64 + carry;
            out.push(sum as u32);
            carry = sum >> 32;
        }
        if carry != 0 {
            out.push(carry as u32);
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// `self - other`; panics if `other > self`.
    ///
    /// # Panics
    ///
    /// Panics when the subtraction would underflow. All protocol call sites
    /// establish `other <= self` beforehand.
    pub fn sub(&self, other: &Self) -> Self {
        assert!(
            self.cmp_val(other) != std::cmp::Ordering::Less,
            "BigUint::sub underflow"
        );
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0i64;
        for i in 0..self.limbs.len() {
            let diff = self.limbs[i] as i64 - *other.limbs.get(i).unwrap_or(&0) as i64 - borrow;
            if diff < 0 {
                out.push((diff + (1i64 << 32)) as u32);
                borrow = 1;
            } else {
                out.push(diff as u32);
                borrow = 0;
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// `self * other` (schoolbook).
    pub fn mul(&self, other: &Self) -> Self {
        if self.is_zero() || other.is_zero() {
            return BigUint::zero();
        }
        let mut out = vec![0u32; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u64;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u64 + a as u64 * b as u64 + carry;
                out[i + j] = cur as u32;
                carry = cur >> 32;
            }
            let mut k = i + other.limbs.len();
            while carry != 0 {
                let cur = out[k] as u64 + carry;
                out[k] = cur as u32;
                carry = cur >> 32;
                k += 1;
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Left shift by `bits`.
    pub fn shl(&self, bits: usize) -> Self {
        if self.is_zero() {
            return BigUint::zero();
        }
        let limb_shift = bits / 32;
        let bit_shift = bits % 32;
        let mut out = vec![0u32; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u32;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (32 - bit_shift);
            }
            if carry != 0 {
                out.push(carry);
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Right shift by `bits`.
    pub fn shr(&self, bits: usize) -> Self {
        let limb_shift = bits / 32;
        if limb_shift >= self.limbs.len() {
            return BigUint::zero();
        }
        let bit_shift = bits % 32;
        let src = &self.limbs[limb_shift..];
        let mut out = Vec::with_capacity(src.len());
        if bit_shift == 0 {
            out.extend_from_slice(src);
        } else {
            for i in 0..src.len() {
                let mut v = src[i] >> bit_shift;
                if i + 1 < src.len() {
                    v |= src[i + 1] << (32 - bit_shift);
                }
                out.push(v);
            }
        }
        let mut n = BigUint { limbs: out };
        n.normalize();
        n
    }

    /// Divides, returning `(quotient, remainder)` (Knuth Algorithm D).
    ///
    /// # Panics
    ///
    /// Panics on division by zero.
    pub fn div_rem(&self, divisor: &Self) -> (Self, Self) {
        assert!(!divisor.is_zero(), "BigUint division by zero");
        if self.cmp_val(divisor) == std::cmp::Ordering::Less {
            return (BigUint::zero(), self.clone());
        }
        if divisor.limbs.len() == 1 {
            let d = divisor.limbs[0] as u64;
            let mut q = vec![0u32; self.limbs.len()];
            let mut rem = 0u64;
            for i in (0..self.limbs.len()).rev() {
                let cur = (rem << 32) | self.limbs[i] as u64;
                q[i] = (cur / d) as u32;
                rem = cur % d;
            }
            let mut quo = BigUint { limbs: q };
            quo.normalize();
            return (quo, BigUint::from_u64(rem));
        }

        // Normalize so the divisor's top limb has its high bit set.
        let shift = divisor
            .limbs
            .last()
            .expect("divisor non-zero")
            .leading_zeros() as usize;
        let u = self.shl(shift);
        let v = divisor.shl(shift);
        let n = v.limbs.len();
        let m = u.limbs.len() - n;
        let mut un = u.limbs.clone();
        un.push(0);
        let vn = &v.limbs;
        let mut q = vec![0u32; m + 1];
        let b = 1u64 << 32;

        for j in (0..=m).rev() {
            let top = (un[j + n] as u64) * b + un[j + n - 1] as u64;
            let mut qhat = top / vn[n - 1] as u64;
            let mut rhat = top % vn[n - 1] as u64;
            while qhat >= b || qhat * vn[n - 2] as u64 > (rhat << 32) + un[j + n - 2] as u64 {
                qhat -= 1;
                rhat += vn[n - 1] as u64;
                if rhat >= b {
                    break;
                }
            }
            // Multiply-and-subtract.
            let mut borrow = 0i64;
            let mut carry = 0u64;
            for i in 0..n {
                let p = qhat * vn[i] as u64 + carry;
                carry = p >> 32;
                let t = un[i + j] as i64 - borrow - (p as u32) as i64;
                un[i + j] = t as u32;
                borrow = if t < 0 { 1 } else { 0 };
            }
            let t = un[j + n] as i64 - borrow - carry as i64;
            un[j + n] = t as u32;
            if t < 0 {
                // qhat was one too large: add back.
                qhat -= 1;
                let mut carry = 0u64;
                for i in 0..n {
                    let sum = un[i + j] as u64 + vn[i] as u64 + carry;
                    un[i + j] = sum as u32;
                    carry = sum >> 32;
                }
                un[j + n] = (un[j + n] as u64).wrapping_add(carry) as u32;
            }
            q[j] = qhat as u32;
        }

        let mut quo = BigUint { limbs: q };
        quo.normalize();
        let mut rem = BigUint {
            limbs: un[..n].to_vec(),
        };
        rem.normalize();
        (quo, rem.shr(shift))
    }

    /// `self mod m`.
    pub fn rem(&self, m: &Self) -> Self {
        self.div_rem(m).1
    }

    /// `(self * other) mod m`.
    pub fn mul_mod(&self, other: &Self, m: &Self) -> Self {
        self.mul(other).rem(m)
    }

    /// `self^exp mod m` by square-and-multiply.
    ///
    /// # Panics
    ///
    /// Panics if `m` is zero.
    pub fn mod_pow(&self, exp: &Self, m: &Self) -> Self {
        assert!(!m.is_zero(), "mod_pow with zero modulus");
        if m.is_one() {
            return BigUint::zero();
        }
        let mut result = BigUint::one();
        let mut base = self.rem(m);
        for i in 0..exp.bit_len() {
            if exp.bit(i) {
                result = result.mul_mod(&base, m);
            }
            base = base.mul_mod(&base, m);
        }
        result
    }

    /// Greatest common divisor (binary GCD).
    pub fn gcd(&self, other: &Self) -> Self {
        let mut a = self.clone();
        let mut b = other.clone();
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        let mut shift = 0usize;
        while a.is_even() && b.is_even() {
            a = a.shr(1);
            b = b.shr(1);
            shift += 1;
        }
        while a.is_even() {
            a = a.shr(1);
        }
        loop {
            while b.is_even() {
                b = b.shr(1);
            }
            if a.cmp_val(&b) == std::cmp::Ordering::Greater {
                std::mem::swap(&mut a, &mut b);
            }
            b = b.sub(&a);
            if b.is_zero() {
                break;
            }
        }
        a.shl(shift)
    }

    /// Modular inverse of `self` modulo `m`, or `None` when not coprime.
    pub fn mod_inverse(&self, m: &Self) -> Option<Self> {
        // Extended Euclid with sign tracking: maintain t as (negative?, mag).
        let mut r0 = m.clone();
        let mut r1 = self.rem(m);
        let mut t0 = (false, BigUint::zero());
        let mut t1 = (false, BigUint::one());
        while !r1.is_zero() {
            let (q, r2) = r0.div_rem(&r1);
            // t2 = t0 - q * t1.
            let qt1 = q.mul(&t1.1);
            let t2 = signed_sub(t0.clone(), (t1.0, qt1));
            r0 = r1;
            r1 = r2;
            t0 = t1;
            t1 = t2;
        }
        if !r0.is_one() {
            return None;
        }
        // Map t0 into [0, m).
        let inv = if t0.0 {
            m.sub(&t0.1.rem(m)).rem(m)
        } else {
            t0.1.rem(m)
        };
        Some(inv)
    }

    /// Uniform random value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is zero.
    pub fn random_below<R: Rng + ?Sized>(rng: &mut R, bound: &Self) -> Self {
        assert!(!bound.is_zero(), "random_below zero bound");
        let bits = bound.bit_len();
        loop {
            let mut limbs = Vec::with_capacity(bits.div_ceil(32));
            for _ in 0..bits.div_ceil(32) {
                limbs.push(rng.random::<u32>());
            }
            // Mask excess high bits.
            let excess = limbs.len() * 32 - bits;
            if excess > 0 {
                let last = limbs.len() - 1;
                limbs[last] &= u32::MAX >> excess;
            }
            let mut candidate = BigUint { limbs };
            candidate.normalize();
            if candidate.cmp_val(bound) == std::cmp::Ordering::Less {
                return candidate;
            }
        }
    }

    /// Random value with exactly `bits` significant bits.
    pub fn random_bits<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> Self {
        assert!(bits > 0, "random_bits needs at least one bit");
        let mut limbs = Vec::with_capacity(bits.div_ceil(32));
        for _ in 0..bits.div_ceil(32) {
            limbs.push(rng.random::<u32>());
        }
        let excess = limbs.len() * 32 - bits;
        let last = limbs.len() - 1;
        limbs[last] &= u32::MAX >> excess;
        limbs[last] |= 1 << ((bits - 1) % 32); // Force the top bit.
        let mut n = BigUint { limbs };
        n.normalize();
        n
    }

    /// Miller-Rabin probabilistic primality test with `rounds` witnesses.
    pub fn is_probable_prime<R: Rng + ?Sized>(&self, rng: &mut R, rounds: usize) -> bool {
        if self.cmp_val(&BigUint::from_u64(2)) == std::cmp::Ordering::Less {
            return false;
        }
        if self.is_even() {
            return self.limbs == [2];
        }
        // Quick trial division by small primes.
        for p in [3u64, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47] {
            let bp = BigUint::from_u64(p);
            if self.cmp_val(&bp) == std::cmp::Ordering::Equal {
                return true;
            }
            if self.rem(&bp).is_zero() {
                return false;
            }
        }
        let one = BigUint::one();
        let n_minus_1 = self.sub(&one);
        let mut d = n_minus_1.clone();
        let mut r = 0usize;
        while d.is_even() {
            d = d.shr(1);
            r += 1;
        }
        let two = BigUint::from_u64(2);
        let bound = self.sub(&BigUint::from_u64(3));
        'witness: for _ in 0..rounds {
            let a = BigUint::random_below(rng, &bound).add(&two);
            let mut x = a.mod_pow(&d, self);
            if x.is_one() || x == n_minus_1 {
                continue;
            }
            for _ in 0..r - 1 {
                x = x.mul_mod(&x, self);
                if x == n_minus_1 {
                    continue 'witness;
                }
            }
            return false;
        }
        true
    }

    /// Generates a random probable prime with exactly `bits` bits.
    pub fn gen_prime<R: Rng + ?Sized>(rng: &mut R, bits: usize) -> Self {
        assert!(bits >= 8, "prime too small to be useful");
        loop {
            let mut candidate = BigUint::random_bits(rng, bits);
            if candidate.is_even() {
                candidate = candidate.add(&BigUint::one());
            }
            if candidate.is_probable_prime(rng, 16) {
                return candidate;
            }
        }
    }
}

/// Computes `a - b` on signed magnitudes represented as `(negative, |x|)`.
fn signed_sub(a: (bool, BigUint), b: (bool, BigUint)) -> (bool, BigUint) {
    match (a.0, b.0) {
        // a - b with both non-negative.
        (false, false) => {
            if a.1.cmp_val(&b.1) != std::cmp::Ordering::Less {
                (false, a.1.sub(&b.1))
            } else {
                (true, b.1.sub(&a.1))
            }
        }
        // a - (-b) = a + b.
        (false, true) => (false, a.1.add(&b.1)),
        // (-a) - b = -(a + b).
        (true, false) => (true, a.1.add(&b.1)),
        // (-a) - (-b) = b - a.
        (true, true) => {
            if b.1.cmp_val(&a.1) != std::cmp::Ordering::Less {
                (false, b.1.sub(&a.1))
            } else {
                (true, a.1.sub(&b.1))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn n(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    #[test]
    fn roundtrip_bytes() {
        for v in [0u64, 1, 255, 256, 0xdead_beef, u64::MAX] {
            let b = n(v);
            assert_eq!(BigUint::from_bytes_be(&b.to_bytes_be()), b, "{v}");
        }
        let big = BigUint::from_bytes_be(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13]);
        assert_eq!(
            big.to_bytes_be(),
            vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13]
        );
    }

    #[test]
    fn add_sub_small() {
        assert_eq!(n(5).add(&n(7)), n(12));
        assert_eq!(n(12).sub(&n(7)), n(5));
        assert_eq!(n(u64::MAX).add(&n(1)).sub(&n(1)), n(u64::MAX));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = n(1).sub(&n(2));
    }

    #[test]
    fn mul_matches_u128() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let a: u64 = rng.random();
            let b: u64 = rng.random();
            let prod = a as u128 * b as u128;
            let got = n(a).mul(&n(b));
            let want = BigUint::from_bytes_be(&prod.to_be_bytes());
            assert_eq!(got, want);
        }
    }

    #[test]
    fn div_rem_matches_u128() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..200 {
            let a: u128 = rng.random();
            let b: u64 = rng.random_range(1..u64::MAX);
            let (q, r) = BigUint::from_bytes_be(&a.to_be_bytes()).div_rem(&n(b));
            assert_eq!(q, BigUint::from_bytes_be(&(a / b as u128).to_be_bytes()));
            assert_eq!(r, BigUint::from_bytes_be(&(a % b as u128).to_be_bytes()));
        }
    }

    #[test]
    fn div_rem_multi_limb_reconstructs() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..50 {
            let a = BigUint::random_bits(&mut rng, 300);
            let b = BigUint::random_bits(&mut rng, 130);
            let (q, r) = a.div_rem(&b);
            assert!(r.cmp_val(&b) == std::cmp::Ordering::Less);
            assert_eq!(q.mul(&b).add(&r), a);
        }
    }

    #[test]
    fn shifts() {
        assert_eq!(n(1).shl(100).shr(100), n(1));
        assert_eq!(n(0xff00).shr(8), n(0xff));
        // shl by k equals multiplication by 2^k.
        let two_to_33 = n(2).mul(&n(1u64 << 32));
        assert_eq!(n(3).shl(33), n(3).mul(&two_to_33));
        assert_eq!(n(0).shl(17), BigUint::zero());
        assert_eq!(n(1).shr(1), BigUint::zero());
    }

    #[test]
    fn mod_pow_small() {
        // 3^7 mod 50 = 2187 mod 50 = 37.
        assert_eq!(n(3).mod_pow(&n(7), &n(50)), n(37));
        // Fermat: a^(p-1) = 1 mod p for prime p.
        let p = n(1_000_000_007);
        assert_eq!(
            n(12345).mod_pow(&p.sub(&BigUint::one()), &p),
            BigUint::one()
        );
    }

    #[test]
    fn gcd_and_inverse() {
        assert_eq!(n(12).gcd(&n(18)), n(6));
        assert_eq!(n(17).gcd(&n(31)), n(1));
        let inv = n(17).mod_inverse(&n(31)).expect("coprime");
        assert_eq!(n(17).mul_mod(&inv, &n(31)), BigUint::one());
        assert!(n(6).mod_inverse(&n(12)).is_none());
    }

    #[test]
    fn inverse_large() {
        let mut rng = StdRng::seed_from_u64(4);
        let m = BigUint::gen_prime(&mut rng, 96);
        for _ in 0..10 {
            let a = BigUint::random_below(&mut rng, &m);
            if a.is_zero() {
                continue;
            }
            let inv = a.mod_inverse(&m).expect("prime modulus");
            assert_eq!(a.mul_mod(&inv, &m), BigUint::one());
        }
    }

    #[test]
    fn primality_known_values() {
        let mut rng = StdRng::seed_from_u64(5);
        for p in [2u64, 3, 5, 101, 65537, 1_000_000_007] {
            assert!(n(p).is_probable_prime(&mut rng, 16), "{p} is prime");
        }
        for c in [1u64, 4, 100, 65541, 1_000_000_000] {
            assert!(!n(c).is_probable_prime(&mut rng, 16), "{c} is composite");
        }
        // Carmichael number 561 must be rejected.
        assert!(!n(561).is_probable_prime(&mut rng, 16));
    }

    #[test]
    fn prime_generation() {
        let mut rng = StdRng::seed_from_u64(6);
        let p = BigUint::gen_prime(&mut rng, 128);
        assert_eq!(p.bit_len(), 128);
        assert!(p.is_probable_prime(&mut rng, 16));
    }

    #[test]
    fn random_below_in_range() {
        let mut rng = StdRng::seed_from_u64(7);
        let bound = n(1000);
        for _ in 0..100 {
            let v = BigUint::random_below(&mut rng, &bound);
            assert!(v.cmp_val(&bound) == std::cmp::Ordering::Less);
        }
    }

    #[test]
    fn bit_len_and_bit() {
        assert_eq!(BigUint::zero().bit_len(), 0);
        assert_eq!(n(1).bit_len(), 1);
        assert_eq!(n(0x8000_0000_0000_0000).bit_len(), 64);
        assert!(n(5).bit(0) && !n(5).bit(1) && n(5).bit(2));
    }
}
