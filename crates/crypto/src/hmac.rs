//! HMAC-MD5 message authentication codes.
//!
//! The thesis authenticates almost every message with UMAC32 tags computed
//! under pairwise session keys (§6.1). UMAC's role in the system is "a fast
//! symmetric MAC producing a small tag"; we reproduce that role with HMAC
//! (RFC 2104) over our [`crate::md5`] implementation, truncated to 8 bytes
//! like the 64-bit UMAC32 tags in the thesis's message formats (Figure 6-1).

use crate::md5::{Digest, Md5};

/// Length in bytes of a truncated MAC tag (matches the thesis's 64-bit tags).
pub const TAG_LEN: usize = 8;

/// A symmetric session key (128 bits, like the thesis's SFS-negotiated keys).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct SessionKey(pub [u8; 16]);

impl SessionKey {
    /// Derives a deterministic key from a u64 seed (test/simulation helper).
    pub fn from_seed(seed: u64) -> Self {
        let d = crate::md5::digest_parts(&[b"session-key", &seed.to_le_bytes()]);
        SessionKey(d.0)
    }

    /// A key of all zeroes, used before key exchange establishes real keys.
    pub fn zero() -> Self {
        SessionKey([0u8; 16])
    }
}

impl std::fmt::Debug for SessionKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never print key material.
        write!(f, "SessionKey(..)")
    }
}

/// A truncated MAC tag.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Tag(pub [u8; TAG_LEN]);

impl std::fmt::Debug for Tag {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tag({:02x}{:02x}..)", self.0[0], self.0[1])
    }
}

const BLOCK_LEN: usize = 64;
const IPAD: u8 = 0x36;
const OPAD: u8 = 0x5c;

/// Cached per-key HMAC midstates: the MD5 states after absorbing the
/// ipad- and opad-xored key block. Those blocks are a pure function of
/// the key, yet the straightforward implementation re-hashed both on
/// every MAC — half the compress calls of a short-message MAC, which is
/// exactly the normal-case workload (64-byte headers under pairwise
/// session keys). The cache is thread-local (the simulator is
/// single-threaded per run) and keyed by raw key bytes; entries are tiny
/// (32 bytes) and the key population — pairwise session keys plus
/// refreshes — is bounded over a run, so it is never evicted.
struct PadStates {
    inner: [u32; 4],
    outer: [u32; 4],
}

fn pad_states(key: &SessionKey) -> PadStates {
    let mut k_block = [0u8; BLOCK_LEN];
    k_block[..16].copy_from_slice(&key.0);
    let mut ipad = [0u8; BLOCK_LEN];
    let mut opad = [0u8; BLOCK_LEN];
    for i in 0..BLOCK_LEN {
        ipad[i] = k_block[i] ^ IPAD;
        opad[i] = k_block[i] ^ OPAD;
    }
    let mut inner = Md5::new();
    inner.update(&ipad);
    let mut outer = Md5::new();
    outer.update(&opad);
    PadStates {
        inner: inner.midstate(),
        outer: outer.midstate(),
    }
}

thread_local! {
    static PAD_CACHE: std::cell::RefCell<std::collections::HashMap<[u8; 16], PadStates>> =
        std::cell::RefCell::new(std::collections::HashMap::new());
}

/// Computes the full (untruncated) HMAC-MD5 of `data` under `key`.
pub fn hmac(key: &SessionKey, data: &[u8]) -> Digest {
    hmac_parts(key, &[data])
}

/// Hard cap on cached keys. The pairwise key population of one run is a
/// few hundred even with recovery-driven refreshes; the cap only exists
/// so a process that churns through many simulations (test runners,
/// long-lived fuzzing) cannot leak an entry per key forever. Clearing is
/// invisible to callers: midstates are recomputed on the next MAC.
const PAD_CACHE_MAX: usize = 16 * 1024;

/// Computes HMAC-MD5 over the concatenation of `parts` under `key`.
pub fn hmac_parts(key: &SessionKey, parts: &[&[u8]]) -> Digest {
    PAD_CACHE.with(|cache| {
        let mut cache = cache.borrow_mut();
        if cache.len() >= PAD_CACHE_MAX {
            cache.clear();
        }
        let pads = cache.entry(key.0).or_insert_with(|| pad_states(key));
        let mut inner = Md5::from_midstate(pads.inner, BLOCK_LEN as u64);
        for p in parts {
            inner.update(p);
        }
        let inner_digest = inner.finish();
        let mut outer = Md5::from_midstate(pads.outer, BLOCK_LEN as u64);
        outer.update(inner_digest.as_bytes());
        outer.finish()
    })
}

/// Computes a truncated 8-byte MAC tag for `data` under `key`.
pub fn mac(key: &SessionKey, data: &[u8]) -> Tag {
    truncate(hmac(key, data))
}

/// Computes a truncated tag over concatenated `parts`.
pub fn mac_parts(key: &SessionKey, parts: &[&[u8]]) -> Tag {
    truncate(hmac_parts(key, parts))
}

/// Verifies a truncated tag in constant-ish time.
pub fn verify(key: &SessionKey, data: &[u8], tag: &Tag) -> bool {
    verify_parts(key, &[data], tag)
}

/// Verifies a truncated tag over concatenated `parts`.
pub fn verify_parts(key: &SessionKey, parts: &[&[u8]], tag: &Tag) -> bool {
    let expect = mac_parts(key, parts);
    // Branch-free comparison; timing side channels are out of scope for the
    // reproduction but this matches how a real implementation compares tags.
    let mut diff = 0u8;
    for (a, b) in expect.0.iter().zip(tag.0.iter()) {
        diff |= a ^ b;
    }
    diff == 0
}

fn truncate(d: Digest) -> Tag {
    let mut t = [0u8; TAG_LEN];
    t.copy_from_slice(&d.0[..TAG_LEN]);
    Tag(t)
}

/// An owned, `Send` HMAC context for one key: the ipad/opad midstates
/// precomputed once at construction.
///
/// The thread-local [`PAD_CACHE`] serves the single-threaded protocol
/// loop well, but a MAC worker pool wants per-key state it can build
/// once, own outright, and use without a hash-map probe per MAC — each
/// pool worker holds one context per peer key. Tags are bit-identical
/// to [`mac_parts`] under the same key.
#[derive(Clone)]
pub struct MacContext {
    inner: [u32; 4],
    outer: [u32; 4],
}

impl MacContext {
    /// Precomputes the pad midstates for `key`.
    pub fn new(key: &SessionKey) -> Self {
        let pads = pad_states(key);
        MacContext {
            inner: pads.inner,
            outer: pads.outer,
        }
    }

    /// Full HMAC-MD5 over the concatenation of `parts`.
    pub fn hmac_parts(&self, parts: &[&[u8]]) -> Digest {
        let mut inner = Md5::from_midstate(self.inner, BLOCK_LEN as u64);
        for p in parts {
            inner.update(p);
        }
        let inner_digest = inner.finish();
        let mut outer = Md5::from_midstate(self.outer, BLOCK_LEN as u64);
        outer.update(inner_digest.as_bytes());
        outer.finish()
    }

    /// Truncated tag over the concatenation of `parts`.
    pub fn mac_parts(&self, parts: &[&[u8]]) -> Tag {
        truncate(self.hmac_parts(parts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 2202 HMAC-MD5 test vectors.
    #[test]
    fn rfc2202_vectors() {
        let key1 = SessionKey([0x0b; 16]);
        assert_eq!(
            hmac(&key1, b"Hi There").to_hex(),
            "9294727a3638bb1c13f48ef8158bfc9d"
        );

        // Case 2 uses the 4-byte key "Jefe"; pad to our fixed 16-byte key by
        // zero-extension, which equals HMAC's own zero padding of short keys.
        let mut k2 = [0u8; 16];
        k2[..4].copy_from_slice(b"Jefe");
        assert_eq!(
            hmac(&SessionKey(k2), b"what do ya want for nothing?").to_hex(),
            "750c783e6ab0b503eaa86e310a5db738"
        );

        let key3 = SessionKey([0xaa; 16]);
        assert_eq!(
            hmac(&key3, &[0xdd; 50]).to_hex(),
            "56be34521d144c88dbb8c733f0e8b3f6"
        );
    }

    #[test]
    fn tag_verifies_and_rejects() {
        let key = SessionKey::from_seed(7);
        let tag = mac(&key, b"pre-prepare header");
        assert!(verify(&key, b"pre-prepare header", &tag));
        assert!(!verify(&key, b"pre-prepare headeR", &tag));
        assert!(!verify(
            &SessionKey::from_seed(8),
            b"pre-prepare header",
            &tag
        ));
        let mut corrupted = tag;
        corrupted.0[0] ^= 1;
        assert!(!verify(&key, b"pre-prepare header", &corrupted));
    }

    #[test]
    fn parts_equal_concat() {
        let key = SessionKey::from_seed(3);
        assert_eq!(mac_parts(&key, &[b"ab", b"cd"]), mac(&key, b"abcd"));
        assert!(verify_parts(&key, &[b"ab", b"cd"], &mac(&key, b"abcd")));
    }

    #[test]
    fn distinct_keys_distinct_tags() {
        let t1 = mac(&SessionKey::from_seed(1), b"m");
        let t2 = mac(&SessionKey::from_seed(2), b"m");
        assert_ne!(t1, t2);
    }

    #[test]
    fn key_debug_redacts() {
        assert_eq!(format!("{:?}", SessionKey::from_seed(1)), "SessionKey(..)");
    }

    #[test]
    fn mac_context_matches_free_functions() {
        let key = SessionKey::from_seed(11);
        let ctx = MacContext::new(&key);
        assert_eq!(
            ctx.mac_parts(&[b"nonce", b"header"]),
            mac_parts(&key, &[b"nonce", b"header"])
        );
        assert_eq!(ctx.hmac_parts(&[b"abcd"]), hmac(&key, b"abcd"));
        // Contexts are key-bound: a different key's context disagrees.
        let other = MacContext::new(&SessionKey::from_seed(12));
        assert_ne!(ctx.mac_parts(&[b"m"]), other.mac_parts(&[b"m"]));
    }

    #[test]
    fn mac_context_is_send() {
        fn assert_send<T: Send + Sync>() {}
        assert_send::<MacContext>();
    }
}
