//! MD5 message digest, implemented from scratch per RFC 1321.
//!
//! The thesis computes all message and state digests with MD5 (§6.1); we
//! reproduce the same primitive. MD5 is cryptographically broken for
//! collision resistance against adaptive attackers, which the thesis already
//! anticipated ("MD5 should still provide adequate security and it can be
//! replaced easily by a more secure hash function"). For this reproduction
//! the digest only needs to be a deterministic 16-byte fingerprint with the
//! same cost profile as the original.

/// Number of bytes in an MD5 digest.
pub const DIGEST_LEN: usize = 16;

/// A 16-byte MD5 digest value.
///
/// `Digest` is ordered and hashable so it can key maps of checkpoint and
/// request state, and it implements a compact hexadecimal [`std::fmt::Debug`]
/// rendering for logs.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Digest(pub [u8; DIGEST_LEN]);

impl Digest {
    /// The digest of the empty string, used as a sentinel "null" digest.
    pub fn zero() -> Self {
        Digest([0u8; DIGEST_LEN])
    }

    /// Returns true if this is the all-zero sentinel digest.
    pub fn is_zero(&self) -> bool {
        self.0 == [0u8; DIGEST_LEN]
    }

    /// Returns the digest bytes.
    pub fn as_bytes(&self) -> &[u8; DIGEST_LEN] {
        &self.0
    }

    /// Interprets the first 8 bytes as a little-endian integer.
    ///
    /// Used by the AdHash construction and by tests that need a cheap
    /// deterministic scalar derived from a digest.
    pub fn as_u64(&self) -> u64 {
        u64::from_le_bytes(self.0[..8].try_into().expect("digest has 16 bytes"))
    }

    /// Renders the digest as lowercase hex.
    pub fn to_hex(&self) -> String {
        let mut s = String::with_capacity(DIGEST_LEN * 2);
        for b in self.0 {
            s.push(char::from_digit((b >> 4) as u32, 16).expect("nibble < 16"));
            s.push(char::from_digit((b & 0xf) as u32, 16).expect("nibble < 16"));
        }
        s
    }
}

impl std::fmt::Debug for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Digest({}..)", &self.to_hex()[..8])
    }
}

impl std::fmt::Display for Digest {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.to_hex())
    }
}

impl AsRef<[u8]> for Digest {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

/// Per-round shift amounts (RFC 1321 §3.4).
const S: [u32; 64] = [
    7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, 7, 12, 17, 22, //
    5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, 5, 9, 14, 20, //
    4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, 4, 11, 16, 23, //
    6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21, 6, 10, 15, 21,
];

/// Sine-derived additive constants (RFC 1321 §3.4): `floor(2^32 * |sin(i+1)|)`.
const K: [u32; 64] = [
    0xd76aa478, 0xe8c7b756, 0x242070db, 0xc1bdceee, 0xf57c0faf, 0x4787c62a, 0xa8304613, 0xfd469501,
    0x698098d8, 0x8b44f7af, 0xffff5bb1, 0x895cd7be, 0x6b901122, 0xfd987193, 0xa679438e, 0x49b40821,
    0xf61e2562, 0xc040b340, 0x265e5a51, 0xe9b6c7aa, 0xd62f105d, 0x02441453, 0xd8a1e681, 0xe7d3fbc8,
    0x21e1cde6, 0xc33707d6, 0xf4d50d87, 0x455a14ed, 0xa9e3e905, 0xfcefa3f8, 0x676f02d9, 0x8d2a4c8a,
    0xfffa3942, 0x8771f681, 0x6d9d6122, 0xfde5380c, 0xa4beea44, 0x4bdecfa9, 0xf6bb4b60, 0xbebfbc70,
    0x289b7ec6, 0xeaa127fa, 0xd4ef3085, 0x04881d05, 0xd9d4d039, 0xe6db99e5, 0x1fa27cf8, 0xc4ac5665,
    0xf4292244, 0x432aff97, 0xab9423a7, 0xfc93a039, 0x655b59c3, 0x8f0ccc92, 0xffeff47d, 0x85845dd1,
    0x6fa87e4f, 0xfe2ce6e0, 0xa3014314, 0x4e0811a1, 0xf7537e82, 0xbd3af235, 0x2ad7d2bb, 0xeb86d391,
];

/// Incremental MD5 context.
///
/// # Examples
///
/// ```
/// use bft_crypto::md5::Md5;
/// let mut ctx = Md5::new();
/// ctx.update(b"abc");
/// assert_eq!(ctx.finish().to_hex(), "900150983cd24fb0d6963f7d28e17f72");
/// ```
#[derive(Clone)]
pub struct Md5 {
    state: [u32; 4],
    buffer: [u8; 64],
    buffered: usize,
    length: u64,
}

impl Default for Md5 {
    fn default() -> Self {
        Self::new()
    }
}

impl Md5 {
    /// Creates a fresh context with the RFC 1321 initialization vector.
    pub fn new() -> Self {
        Md5 {
            state: [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476],
            buffer: [0u8; 64],
            buffered: 0,
            length: 0,
        }
    }

    /// Absorbs `data` into the digest state.
    pub fn update(&mut self, data: &[u8]) {
        self.length = self.length.wrapping_add(data.len() as u64);
        let mut input = data;
        if self.buffered > 0 {
            let take = (64 - self.buffered).min(input.len());
            self.buffer[self.buffered..self.buffered + take].copy_from_slice(&input[..take]);
            self.buffered += take;
            input = &input[take..];
            if self.buffered == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffered = 0;
            }
        }
        while input.len() >= 64 {
            let (block, rest) = input.split_at(64);
            let block: &[u8; 64] = block.try_into().expect("split_at(64) yields 64 bytes");
            self.compress(block);
            input = rest;
        }
        if !input.is_empty() {
            self.buffer[..input.len()].copy_from_slice(input);
            self.buffered = input.len();
        }
    }

    /// Absorbs a single u64 in little-endian order.
    pub fn update_u64(&mut self, v: u64) {
        self.update(&v.to_le_bytes());
    }

    /// Resumes a context from a saved block-boundary state: `state` as it
    /// stood after absorbing `length` bytes (a multiple of 64). Used by
    /// HMAC to cache the fixed key-pad block instead of re-hashing it on
    /// every MAC.
    pub fn from_midstate(state: [u32; 4], length: u64) -> Self {
        debug_assert_eq!(length % 64, 0, "midstate must sit on a block boundary");
        Md5 {
            state,
            buffer: [0u8; 64],
            buffered: 0,
            length,
        }
    }

    /// The current internal state, valid as a [`Md5::from_midstate`] seed
    /// only at a block boundary (`length % 64 == 0`, nothing buffered).
    pub fn midstate(&self) -> [u32; 4] {
        debug_assert_eq!(self.buffered, 0, "midstate read mid-block");
        self.state
    }

    /// Pads and finalizes, returning the digest.
    pub fn finish(mut self) -> Digest {
        // One-shot RFC 1321 padding: 0x80, zeroes to 56 mod 64, then the
        // original bit length. (The previous byte-at-a-time padding loop
        // was a measurable fraction of every digest on the hot path.)
        const PADDING: [u8; 64] = {
            let mut p = [0u8; 64];
            p[0] = 0x80;
            p
        };
        let bit_len = self.length.wrapping_mul(8);
        let pad_len = 1 + (55usize.wrapping_sub(self.length as usize) % 64);
        self.update(&PADDING[..pad_len]);
        self.update(&bit_len.to_le_bytes());
        debug_assert_eq!(self.buffered, 0);
        let mut out = [0u8; 16];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
        }
        Digest(out)
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut m = [0u32; 16];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            m[i] = u32::from_le_bytes(chunk.try_into().expect("chunk of 4"));
        }
        let [mut a, mut b, mut c, mut d] = self.state;
        // Four explicit rounds (RFC 1321 §3.4) instead of one loop with a
        // per-iteration round dispatch: same arithmetic, branch-free body.
        macro_rules! round {
            ($f:expr, $g:expr, $i:expr) => {
                let f: u32 = $f;
                let g: usize = $g;
                let tmp = d;
                d = c;
                c = b;
                let sum = a.wrapping_add(f).wrapping_add(K[$i]).wrapping_add(m[g]);
                b = b.wrapping_add(sum.rotate_left(S[$i]));
                a = tmp;
            };
        }
        let mut i = 0;
        while i < 16 {
            round!((b & c) | (!b & d), i, i);
            i += 1;
        }
        while i < 32 {
            round!((d & b) | (!d & c), (5 * i + 1) % 16, i);
            i += 1;
        }
        while i < 48 {
            round!(b ^ c ^ d, (3 * i + 5) % 16, i);
            i += 1;
        }
        while i < 64 {
            round!(c ^ (b | !d), (7 * i) % 16, i);
            i += 1;
        }
        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
    }
}

/// Computes the MD5 digest of a byte slice in one call.
pub fn digest(data: &[u8]) -> Digest {
    let mut ctx = Md5::new();
    ctx.update(data);
    ctx.finish()
}

/// Computes the MD5 digest of the concatenation of several byte slices.
pub fn digest_parts(parts: &[&[u8]]) -> Digest {
    let mut ctx = Md5::new();
    for p in parts {
        ctx.update(p);
    }
    ctx.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 1321 appendix A.5 test suite.
    #[test]
    fn rfc1321_vectors() {
        let cases: &[(&[u8], &str)] = &[
            (b"", "d41d8cd98f00b204e9800998ecf8427e"),
            (b"a", "0cc175b9c0f1b6a831c399e269772661"),
            (b"abc", "900150983cd24fb0d6963f7d28e17f72"),
            (b"message digest", "f96b697d7cb7938d525a2f31aaf161d0"),
            (
                b"abcdefghijklmnopqrstuvwxyz",
                "c3fcd3d76192e4007dfb496cca67e13b",
            ),
            (
                b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
                "d174ab98d277d9f5a5611c2c9f419d9f",
            ),
            (
                b"12345678901234567890123456789012345678901234567890123456789012345678901234567890",
                "57edf4a22be3c955ac49da2e2107b67a",
            ),
        ];
        for (input, want) in cases {
            assert_eq!(digest(input).to_hex(), *want, "input {:?}", input);
        }
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        for split in [0, 1, 17, 63, 64, 65, 128, 999, 1000] {
            let mut ctx = Md5::new();
            ctx.update(&data[..split]);
            ctx.update(&data[split..]);
            assert_eq!(ctx.finish(), digest(&data), "split at {split}");
        }
    }

    #[test]
    fn digest_parts_concatenates() {
        assert_eq!(
            digest_parts(&[b"mes", b"sage ", b"digest"]),
            digest(b"message digest")
        );
    }

    #[test]
    fn multi_block_input() {
        // Exercise inputs spanning several 64-byte blocks with non-aligned tail.
        let data = vec![0xabu8; 200];
        let d = digest(&data);
        // Check against a second, byte-at-a-time computation.
        let mut ctx = Md5::new();
        for b in &data {
            ctx.update(std::slice::from_ref(b));
        }
        assert_eq!(ctx.finish(), d);
    }

    #[test]
    fn hex_roundtrip_format() {
        let d = digest(b"abc");
        assert_eq!(d.to_hex().len(), 32);
        assert_eq!(format!("{d}"), d.to_hex());
        assert!(format!("{d:?}").starts_with("Digest(9001"));
    }

    #[test]
    fn zero_digest_sentinel() {
        assert!(Digest::zero().is_zero());
        assert!(!digest(b"x").is_zero());
    }

    #[test]
    fn as_u64_is_le_prefix() {
        let d = Digest([1, 0, 0, 0, 0, 0, 0, 0, 9, 9, 9, 9, 9, 9, 9, 9]);
        assert_eq!(d.as_u64(), 1);
    }
}
