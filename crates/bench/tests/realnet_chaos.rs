//! Integration tests for the real-network chaos executor: a seeded
//! simulator schedule replayed over live TCP must pass the four-part
//! oracle, and a deliberately tampered schedule must fail it and shrink
//! to the tamper alone. The heavyweight multi-seed soak lives in the
//! `chaos` binary (`--realnet --seeds N`); these tests keep one
//! passing and one failing replay inside the debug-build test budget.

use bft_bench::realnet_chaos::{run_realnet_plan, RealnetOpts};
use bft_sim::chaos::{shrink_with, ChaosAction, ChaosPlan};

/// Trimmed workload so a debug-build replay is dominated by the
/// schedule's own wall-clock span, not the operation count.
fn test_opts() -> RealnetOpts {
    RealnetOpts {
        ops_per_client: Some(12),
        think_us: Some(15_000),
        ..RealnetOpts::default()
    }
}

#[test]
fn realnet_plan_replays_live_faults_and_holds_oracle() {
    let plan = ChaosPlan::generate_realnet(0);
    assert!(plan.realnet, "realnet plans must carry the mode flag");
    let opts = test_opts();
    let report = run_realnet_plan(&plan, &opts);
    assert!(
        report.ok,
        "oracle violations under seed 0: {:?}",
        report.violations
    );
    assert_eq!(
        report.ops_completed,
        plan.clients as u64 * opts.ops_per_client.unwrap(),
        "every client must finish its workload"
    );
    // The generator guarantees partition, link-degradation, and
    // crash–restart coverage; all of them must have run live.
    let applied = report.applied.join("\n");
    for needle in ["partition", "degrade-link", "crash", "restart"] {
        assert!(
            applied.contains(needle),
            "expected a live {needle} fault; applied:\n{applied}"
        );
    }
    // Nothing is silently dropped: every skipped action says why.
    assert!(
        report
            .skipped
            .iter()
            .all(|s| s.contains("no live analogue")),
        "unexplained skips: {:?}",
        report.skipped
    );
}

#[test]
fn realnet_tamper_fails_safety_and_shrinks_to_the_tamper_alone() {
    let full = ChaosPlan::generate_realnet_with_violation(0);
    let tamper_ep = full
        .events
        .iter()
        .find(|e| matches!(e.action, ChaosAction::TamperJournal { .. }))
        .expect("violation plan carries a tamper event")
        .episode;
    // Keep the tamper plus one innocent episode: the shrink still has
    // something to discard, but live probes stay cheap in debug builds.
    let other_ep = *full
        .episodes()
        .iter()
        .find(|&&e| e != tamper_ep)
        .expect("plans have more than one episode");
    let plan = full.filter_episodes(&[tamper_ep, other_ep]);
    let opts = test_opts();

    let report = run_realnet_plan(&plan, &opts);
    assert!(!report.ok, "tampered journal must trip the oracle");
    assert!(
        report.violations.iter().any(|v| v.starts_with("safety:")),
        "tamper must surface as a safety violation, got {:?}",
        report.violations
    );

    let minimal = shrink_with(&plan, |p| !run_realnet_plan(p, &opts).ok);
    assert_eq!(
        minimal.episodes(),
        vec![tamper_ep],
        "live shrinking must isolate the tamper episode"
    );
    let repro = minimal.repro_command();
    assert!(
        repro.contains("--realnet"),
        "repro must replay live: {repro}"
    );
    assert!(
        repro.contains("--seed 0") && repro.contains("--inject-violation"),
        "repro must carry seed and violation flags: {repro}"
    );
}
