//! Criterion benchmarks for whole-protocol simulation runs: real time to
//! simulate a batch of operations through the full BFT pipeline, and
//! message wire encoding/decoding throughput.

use bft_core::config::{AuthMode, Optimizations};
use bft_sim::scenarios::{latency, MicroOp};
use bft_types::Wire;
use criterion::{criterion_group, criterion_main, Criterion};

fn bench_protocol_round(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulated_protocol");
    g.sample_size(10);
    g.bench_function("bft_0_0_x10", |b| {
        b.iter(|| {
            latency(
                MicroOp::zero_zero(),
                AuthMode::Macs,
                Optimizations::all(),
                10,
            )
        })
    });
    g.bench_function("bft_0_0_read_only_x10", |b| {
        b.iter(|| {
            latency(
                MicroOp {
                    read_only: true,
                    ..MicroOp::zero_zero()
                },
                AuthMode::Macs,
                Optimizations::all(),
                10,
            )
        })
    });
    g.finish();
}

fn bench_wire(c: &mut Criterion) {
    let req = bft_types::Request {
        requester: bft_types::Requester::Client(bft_types::ClientId(1)),
        timestamp: bft_types::Timestamp(7),
        operation: bytes::Bytes::from(vec![0u8; 512]),
        read_only: false,
        replier: Some(bft_types::ReplicaId(2)),
        auth: bft_types::Auth::None,
        digest_memo: bft_types::DigestMemo::new(),
    };
    let msg = bft_types::Message::Request(req);
    c.bench_function("wire_encode_request_512B", |b| {
        b.iter(|| std::hint::black_box(&msg).encoded())
    });
    let bytes = msg.encoded();
    c.bench_function("wire_decode_request_512B", |b| {
        b.iter(|| {
            let mut slice = bytes.as_slice();
            bft_types::Message::decode(&mut slice).expect("valid")
        })
    });
}

criterion_group!(benches, bench_protocol_round, bench_wire);
criterion_main!(benches);
