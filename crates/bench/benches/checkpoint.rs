//! Criterion benchmarks for checkpoint management (E-8.4.1): incremental
//! checkpoint creation versus modification locality, copy-on-write
//! snapshot overhead, and AdHash incremental updates.

use bft_core::partition_tree::PartitionTree;
use bft_types::SeqNo;
use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn make_tree(pages: u64) -> PartitionTree {
    PartitionTree::new(
        (0..pages).map(|_| Bytes::from(vec![0u8; 4096])).collect(),
        256,
    )
}

fn bench_checkpoint_creation(c: &mut Criterion) {
    let mut g = c.benchmark_group("checkpoint_creation_1024_pages");
    g.sample_size(20);
    for modified in [1usize, 16, 256] {
        g.bench_with_input(
            BenchmarkId::from_parameter(modified),
            &modified,
            |b, &modified| {
                let mut tree = make_tree(1024);
                let mut seq = 0u64;
                b.iter(|| {
                    seq += 1;
                    for p in 0..modified {
                        tree.write_page(p as u64, Bytes::from(vec![seq as u8; 4096]));
                    }
                    let d = tree.checkpoint(SeqNo(seq));
                    tree.discard_below(SeqNo(seq));
                    d
                })
            },
        );
    }
    g.finish();
}

fn bench_adhash_update(c: &mut Criterion) {
    let d1 = bft_crypto::digest(b"old");
    let d2 = bft_crypto::digest(b"new");
    let digests: Vec<_> = (0..256u32)
        .map(|i| bft_crypto::digest(&i.to_le_bytes()))
        .collect();
    c.bench_function("adhash_incremental_replace", |b| {
        let mut acc = bft_crypto::AdHash::from_digests(digests.iter());
        b.iter(|| {
            acc.replace(std::hint::black_box(&d1), std::hint::black_box(&d2));
            acc.replace(&d2, &d1);
        })
    });
    c.bench_function("adhash_rebuild_256", |b| {
        b.iter(|| bft_crypto::AdHash::from_digests(std::hint::black_box(&digests)))
    });
}

fn bench_rollback(c: &mut Criterion) {
    c.bench_function("rollback_to_checkpoint_64_pages", |b| {
        b.iter_batched(
            || {
                let mut tree = make_tree(64);
                tree.write_page(0, Bytes::from_static(b"committed"));
                tree.checkpoint(SeqNo(1));
                for p in 0..32u64 {
                    tree.write_page(p, Bytes::from(vec![7u8; 4096]));
                }
                tree.checkpoint(SeqNo(2));
                tree
            },
            |mut tree| tree.rollback_to(SeqNo(1)),
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group!(
    benches,
    bench_checkpoint_creation,
    bench_adhash_update,
    bench_rollback
);
criterion_main!(benches);
