//! Criterion micro-benchmarks for the cryptographic substrate (E-8.2.1,
//! E-8.2.2): digest throughput, MAC and authenticator cost, signature
//! sign/verify, and RSA session-key encryption.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

fn bench_digest(c: &mut Criterion) {
    let mut g = c.benchmark_group("md5_digest");
    for size in [64usize, 1024, 4096, 8192] {
        let data = vec![0xa5u8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, d| {
            b.iter(|| bft_crypto::digest(std::hint::black_box(d)))
        });
    }
    g.finish();
}

fn bench_mac(c: &mut Criterion) {
    let key = bft_crypto::SessionKey::from_seed(1);
    let msg = vec![0u8; 64];
    c.bench_function("hmac_md5_64B", |b| {
        b.iter(|| bft_crypto::hmac::mac(&key, std::hint::black_box(&msg)))
    });
    let tag = bft_crypto::hmac::mac(&key, &msg);
    c.bench_function("hmac_md5_verify_64B", |b| {
        b.iter(|| bft_crypto::hmac::verify(&key, std::hint::black_box(&msg), &tag))
    });
}

fn bench_authenticator(c: &mut Criterion) {
    let msg = vec![0u8; 64];
    let mut g = c.benchmark_group("authenticator_generate");
    for n in [4usize, 7, 13, 37] {
        let keys: Vec<_> = (0..n as u64)
            .map(bft_crypto::SessionKey::from_seed)
            .collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &keys, |b, keys| {
            b.iter(|| bft_crypto::Authenticator::generate(keys, 7, std::hint::black_box(&msg)))
        });
    }
    g.finish();
}

fn bench_signatures(c: &mut Criterion) {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let kp = bft_crypto::KeyPair::generate_with_bits(&mut rng, 1024);
    let msg = vec![0u8; 64];
    let mut g = c.benchmark_group("rsa_1024");
    g.sample_size(10);
    g.bench_function("sign", |b| b.iter(|| kp.sign(std::hint::black_box(&msg))));
    let sig = kp.sign(&msg);
    g.bench_function("verify", |b| {
        b.iter(|| kp.public.verify(std::hint::black_box(&msg), &sig))
    });
    let key = [9u8; 16];
    g.bench_function("encrypt_session_key", |b| {
        b.iter(|| kp.public.encrypt(&mut rng, std::hint::black_box(&key)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_digest,
    bench_mac,
    bench_authenticator,
    bench_signatures
);
criterion_main!(benches);
