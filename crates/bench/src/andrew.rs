//! The Andrew benchmark over the live runtime (§8.6): BFS replicated
//! over real TCP versus the unreplicated baseline, reproducing the
//! paper's headline comparison with real sockets and a real clock.
//!
//! Four configurations, one script:
//!
//! * `replicated_fast_paths` — BFS on an f=1 cluster over loopback TCP,
//!   read-only ops on the §5.1.3 quorum-reply path and tentative
//!   execution (§5.1.2) on.
//! * `replicated_no_fast_paths` — same cluster with read-only marking
//!   off and tentative execution disabled: every op takes the full
//!   committed three-phase path.
//! * `unreplicated_tcp` — the NFS-std analogue: one unreplicated
//!   [`bft_runtime::UnreplicatedServer`] over the same loopback TCP,
//!   same number of closed-loop connections. This is the baseline the
//!   paper measures overhead against (their NFS-std also crosses the
//!   wire for every operation).
//! * `unreplicated_direct` — the same script executed in-process with
//!   zero wire cost: the absolute floor, reported for transparency. No
//!   networked system can approach it, so no overhead target applies.
//!
//! After each replicated case the safety oracle runs: every replica
//! must agree on overlapping committed-journal entries and converge to
//! one state digest, or the number does not count.

use bfs::{generate_script, AndrewConfig, ScriptedOp};
use bft_runtime::bfs_driver::{
    run_andrew_direct, run_andrew_mux, run_andrew_unreplicated_tcp, AndrewRun,
};
use bft_runtime::config::ServiceKind;
use bft_runtime::loopback::LoopbackCluster;
use bft_types::ClientId;
use std::time::Duration;

/// BFS state size for the benchmark service, matching the live nodes.
const BUCKETS: u64 = 128;
/// Per-case completion deadline.
const DEADLINE: Duration = Duration::from_secs(600);

/// One configuration's measured run.
pub struct CaseOutcome {
    /// Configuration id (JSON `case` field).
    pub id: &'static str,
    /// The measured run.
    pub run: AndrewRun,
}

/// Runs the script against a fresh replicated loopback cluster.
///
/// `fast_paths` toggles *both* §5.1 fast paths at once: read-only
/// marking at the client and tentative execution at the replicas —
/// mirroring the paper's "BFS" vs "BFS-nr" style comparison.
fn run_replicated(
    script: Vec<ScriptedOp>,
    clients: usize,
    fast_paths: bool,
    app_work: bool,
) -> AndrewRun {
    let cluster = LoopbackCluster::start_with(1, clients as u32, |topo| {
        topo.service = ServiceKind::Bfs;
        topo.tentative_execution = fast_paths;
        // Benchmark tuning (same rationale as the realnet benchmark): a
        // checkpoint every 128 seqnos and a 2s base view-change timeout
        // so a saturated single-core host does not trigger spurious view
        // changes mid-run.
        topo.checkpoint_interval = 128;
        topo.view_change_ms = 2000;
    });
    let ids: Vec<ClientId> = (0..clients as u32).map(ClientId).collect();
    let run = run_andrew_mux(
        &ids,
        cluster.topology(),
        script,
        fast_paths,
        app_work,
        DEADLINE,
    );
    // Safety oracle: the experiment only counts if the replicas agree.
    let snaps = cluster
        .wait_converged(Duration::from_secs(60))
        .unwrap_or_else(|diag| panic!("andrew replicated (fast_paths={fast_paths}): {diag}"));
    assert_eq!(snaps.len(), 4);
    cluster.shutdown();
    run
}

/// Runs the script against the unreplicated TCP server.
fn run_baseline_tcp(script: Vec<ScriptedOp>, clients: usize, app_work: bool) -> AndrewRun {
    let server = bft_runtime::UnreplicatedServer::start(BUCKETS);
    run_andrew_unreplicated_tcp(server.addr(), clients, script, app_work, DEADLINE)
}

/// Runs `f` `reps` times and keeps the run with the median total wall —
/// a single-core host shared with the cluster under test is noisy, and
/// one descheduled burst should not decide the overhead ratio.
fn median_run(reps: usize, f: impl Fn() -> AndrewRun) -> AndrewRun {
    let mut runs: Vec<AndrewRun> = (0..reps.max(1)).map(|_| f()).collect();
    runs.sort_by_key(|r| r.total_wall);
    runs.swap_remove(runs.len() / 2)
}

/// Runs the four configurations over the same generated script with
/// `clients` concurrent clients/connections, each case the median of
/// `reps` runs. `app_work` selects application mode (the benchmark's
/// client-side compute runs on every completion — the configuration the
/// paper's headline is about) versus pure RPC replay (no compute
/// between file ops; the §8.3-style stress). Case ids get an `rpc_`
/// prefix in replay mode.
pub fn run_cases(
    cfg: &AndrewConfig,
    clients: usize,
    app_work: bool,
    reps: usize,
) -> Vec<CaseOutcome> {
    let script = generate_script(cfg);
    let id = |name: &'static str, rpc: &'static str| if app_work { name } else { rpc };
    vec![
        CaseOutcome {
            id: id("replicated_fast_paths", "rpc_replicated_fast_paths"),
            run: median_run(reps, || {
                run_replicated(script.clone(), clients, true, app_work)
            }),
        },
        CaseOutcome {
            id: id("replicated_no_fast_paths", "rpc_replicated_no_fast_paths"),
            run: median_run(reps, || {
                run_replicated(script.clone(), clients, false, app_work)
            }),
        },
        CaseOutcome {
            id: id("unreplicated_tcp", "rpc_unreplicated_tcp"),
            run: median_run(reps, || run_baseline_tcp(script.clone(), clients, app_work)),
        },
        CaseOutcome {
            id: id("unreplicated_direct", "rpc_unreplicated_direct"),
            run: median_run(reps, || {
                run_andrew_direct(BUCKETS, script.clone(), app_work)
            }),
        },
    ]
}

/// Percentile over a sorted latency vector, in milliseconds.
pub fn percentile_ms(sorted_us: &[u64], q: f64) -> f64 {
    if sorted_us.is_empty() {
        return 0.0;
    }
    sorted_us[((sorted_us.len() - 1) as f64 * q).round() as usize] as f64 / 1e3
}

/// Wall-clock ratio of two runs (`num / den`).
pub fn overhead(num: &AndrewRun, den: &AndrewRun) -> f64 {
    num.total_wall.as_secs_f64() / den.total_wall.as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_handles_edges() {
        assert_eq!(percentile_ms(&[], 0.5), 0.0);
        assert_eq!(percentile_ms(&[1000], 0.99), 1.0);
        let v = [1000, 2000, 3000, 4000];
        assert_eq!(percentile_ms(&v, 0.0), 1.0);
        assert_eq!(percentile_ms(&v, 1.0), 4.0);
    }
}
