//! The one JSON emitter behind every `BENCH_pr*.json` artifact.
//!
//! Each benchmark binary used to hand-roll its JSON with `format!` +
//! `concat!` templates — five copies of the same escaping, numeric
//! formatting, and `--out` plumbing. [`BenchReport`] replaces them: a
//! builder that keeps key order, renders numbers with the fixed
//! precision the old templates used (non-finite values become `null`,
//! as before), and writes the file with the standard "wrote ..."
//! confirmation line.
//!
//! No serde: the workspace has no JSON dependency, and these artifacts
//! only need writing, never parsing.

use std::fmt::Write as _;

/// A JSON value with formatting captured at construction time, so a
/// report renders exactly the way the benchmark meant it.
#[derive(Clone, Debug)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer.
    U64(u64),
    /// A float rendered with a fixed number of decimals; NaN and
    /// infinities render as `null` (the "no baseline recorded" marker).
    F(f64, usize),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; key order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Shorthand for a string value.
    pub fn s(v: impl Into<String>) -> Json {
        Json::Str(v.into())
    }

    /// Shorthand for an object from `(key, value)` pairs.
    pub fn obj<const N: usize>(pairs: [(&str, Json); N]) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    fn render(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F(v, decimals) => {
                if v.is_finite() {
                    let _ = write!(out, "{v:.*}", decimals);
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, indent + 1);
                    item.render(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in pairs.iter().enumerate() {
                    pad(out, indent + 1);
                    let _ = write!(out, "\"{key}\": ");
                    value.render(out, indent + 1);
                    if i + 1 < pairs.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

/// Builder for one `BENCH_pr*.json` artifact: top-level facts in
/// insertion order, then a `cases` array.
pub struct BenchReport {
    fields: Vec<(String, Json)>,
    cases: Vec<Json>,
}

impl BenchReport {
    /// Starts a report with the two fields every artifact leads with.
    pub fn new(experiment: &str, metric: &str) -> BenchReport {
        BenchReport {
            fields: vec![
                ("experiment".to_string(), Json::s(experiment)),
                ("metric".to_string(), Json::s(metric)),
            ],
            cases: Vec::new(),
        }
    }

    /// Records the run mode (`"smoke"` or `"full"`).
    pub fn mode(&mut self, smoke: bool) -> &mut Self {
        self.field("mode", Json::s(if smoke { "smoke" } else { "full" }))
    }

    /// Records the host's CPU count — the fact every real-time
    /// benchmark needs next to its numbers.
    pub fn host_cpus(&mut self) -> &mut Self {
        let cpus = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        self.field("host_cpus", Json::U64(cpus as u64))
    }

    /// Adds any top-level field (setup, note, derived ratios, ...).
    pub fn field(&mut self, key: &str, value: Json) -> &mut Self {
        self.fields.push((key.to_string(), value));
        self
    }

    /// Appends one entry to the `cases` array.
    pub fn case(&mut self, value: Json) -> &mut Self {
        self.cases.push(value);
        self
    }

    /// Renders the artifact: the fields in insertion order, `cases`
    /// last, trailing newline.
    pub fn to_json(&self) -> String {
        let mut pairs = self.fields.clone();
        pairs.push(("cases".to_string(), Json::Arr(self.cases.clone())));
        let mut out = String::new();
        Json::Obj(pairs).render(&mut out, 0);
        out.push('\n');
        out
    }

    /// Writes the artifact and prints the standard confirmation line.
    pub fn write(&self, path: &str) {
        std::fs::write(path, self.to_json()).expect("write benchmark json");
        println!("wrote {path}");
    }
}

/// Resolves the output path shared by every benchmark binary: `--out
/// PATH` wins; the default lands `file` at the workspace root
/// regardless of the cwd.
pub fn out_path(args: &[String], file: &str) -> String {
    args.iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| format!("{}/../../{file}", env!("CARGO_MANIFEST_DIR")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_ordered_fields_cases_and_fixed_precision() {
        let mut r = BenchReport::new("exp", "ops/s");
        r.mode(true)
            .field("note", Json::s("a \"quoted\" note\nwith a newline"))
            .case(Json::obj([
                ("case", Json::s("c1")),
                ("ops", Json::U64(40)),
                ("wall_ms", Json::F(12.345, 1)),
                (
                    "latency_ms",
                    Json::obj([("p50", Json::F(1.2345, 3)), ("p99", Json::F(f64::NAN, 3))]),
                ),
            ]));
        let json = r.to_json();
        assert!(json.starts_with("{\n  \"experiment\": \"exp\",\n  \"metric\": \"ops/s\",\n"));
        assert!(json.contains("\"mode\": \"smoke\""));
        assert!(json.contains("\\\"quoted\\\""), "{json}");
        assert!(json.contains("\\n"), "{json}");
        assert!(json.contains("\"wall_ms\": 12.3"), "{json}");
        assert!(json.contains("\"p50\": 1.234"), "{json}");
        assert!(json.contains("\"p99\": null"), "non-finite -> null: {json}");
        assert!(json.ends_with("}\n"));
        // Key order survives: experiment, metric, mode, note, cases.
        let order: Vec<usize> = ["experiment", "metric", "mode", "note", "cases"]
            .iter()
            .map(|k| json.find(&format!("\"{k}\"")).expect(k))
            .collect();
        assert!(order.windows(2).all(|w| w[0] < w[1]), "{order:?}");
    }

    #[test]
    fn out_path_prefers_flag() {
        let args = vec!["--out".to_string(), "/tmp/x.json".to_string()];
        assert_eq!(out_path(&args, "BENCH.json"), "/tmp/x.json");
        assert!(out_path(&[], "BENCH.json").ends_with("/../../BENCH.json"));
    }

    #[test]
    fn empty_containers_render_inline() {
        let mut out = String::new();
        Json::Arr(vec![]).render(&mut out, 0);
        assert_eq!(out, "[]");
        let mut out = String::new();
        Json::Obj(vec![]).render(&mut out, 0);
        assert_eq!(out, "{}");
    }
}
