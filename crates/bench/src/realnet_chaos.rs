//! The real-network chaos executor: replays a simulator [`ChaosPlan`]
//! against a live [`LoopbackCluster`] over real TCP sockets.
//!
//! The simulator proves the protocol under adversarial schedules in
//! virtual time; this module proves the *runtime* under the same seeded
//! schedules in wall-clock time. A plan's virtual microseconds are read
//! one-to-one as real microseconds: the controller (the calling thread)
//! walks the event list, sleeping until each event's offset from the
//! run start, and applies it to the live cluster — partitions, link
//! degradation, and isolation through the transport's [`FaultPlane`];
//! crashes and restarts through [`LoopbackCluster::kill`] and
//! [`LoopbackCluster::restart`]; retransmit storms through the clients'
//! [`StormSignal`]. Actions with no live analogue (Byzantine behavior
//! swaps, page corruption, proactive recovery — the runtime replica has
//! no behavior hooks) are skipped and recorded, never silently dropped.
//!
//! The oracle is the same four checks the simulator evaluates:
//!
//! 1. **Journal agreement** — after the post-schedule convergence wait,
//!    every pair of committed journals agrees wherever they overlap.
//! 2. **Exactly-once** — each client's k-th completed INC returned
//!    exactly k (the counter service keeps per-client counters).
//! 3. **Read-your-writes** — every GET returned exactly the number of
//!    INCs that client completed before it.
//! 4. **Liveness** — every client finished its workload before the
//!    deadline and the cluster converged afterwards.
//!
//! A `TamperJournal` event is the deliberate safety violation used to
//! validate the oracle: it cannot corrupt a live replica's memory, so
//! it is applied *at evaluation time* — the target's converged snapshot
//! gets one committed digest flipped before journal agreement runs.
//! That exercises the same detection path a real divergence would.
//!
//! Determinism caveat: the *schedule* replays exactly (same seed, same
//! events, same offsets), but the live interleaving under it does not —
//! real sockets and real threads race. A failing seed reproduces the
//! same adversarial conditions, not the same packet trace.
//!
//! [`ChaosPlan`]: bft_sim::chaos::ChaosPlan

use bft_runtime::{
    run_client_with, ClientHooks, ClientReport, ConvergeFailure, FaultPlane, LoadMode,
    LoopbackCluster, Snapshot, StormSignal, Workload,
};
use bft_sim::chaos::{ChaosAction, ChaosPlan};
use bft_types::{ClientId, NodeId, ReplicaId};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Knobs for one live replay. The plan carries the workload shape the
/// simulator used; tests override it to keep debug-build runs short.
#[derive(Clone, Debug)]
pub struct RealnetOpts {
    /// Override of the plan's operations per client.
    pub ops_per_client: Option<u64>,
    /// Override of the plan's client think time, µs.
    pub think_us: Option<u64>,
    /// How long to wait for post-schedule convergence.
    pub converge_timeout: Duration,
    /// Hard per-client workload deadline (liveness bound).
    pub deadline: Duration,
}

impl Default for RealnetOpts {
    fn default() -> Self {
        RealnetOpts {
            ops_per_client: None,
            think_us: None,
            converge_timeout: Duration::from_secs(30),
            deadline: Duration::from_secs(60),
        }
    }
}

/// What one live replay observed; mirrors the simulator's `ChaosReport`
/// so the chaos binary prints both the same way.
#[derive(Clone, Debug)]
pub struct RealnetReport {
    /// Did every oracle check hold?
    pub ok: bool,
    /// Oracle violations (`safety:` / `liveness:` / per-client).
    pub violations: Vec<String>,
    /// Actions applied to the live cluster, in order.
    pub applied: Vec<String>,
    /// Actions with no live analogue, skipped with a note.
    pub skipped: Vec<String>,
    /// Operations completed across all clients.
    pub ops_completed: u64,
    /// Operations that needed at least one retransmission.
    pub ops_retransmitted: u64,
    /// First live replica's view at the end (view churn witness).
    pub final_view: u64,
    /// Wall time for the whole replay, oracle included.
    pub wall: Duration,
}

/// Replays `plan` against a fresh loopback cluster and evaluates the
/// oracle. Never panics on oracle violations — those come back in the
/// report so `shrink_with` can minimize the schedule.
pub fn run_realnet_plan(plan: &ChaosPlan, opts: &RealnetOpts) -> RealnetReport {
    let started = Instant::now();
    let plane = FaultPlane::new(plan.seed);
    let storm = StormSignal::new(plan.clients);
    let mut cluster =
        LoopbackCluster::start_chaos(1, plan.clients, Some(Arc::clone(&plane)), |_| {});
    // Clients borrow a topology clone so the controller below keeps the
    // exclusive borrow it needs for kill/restart.
    let topo = cluster.topo.clone();

    let workload = Workload {
        ops: opts.ops_per_client.unwrap_or(plan.ops_per_client),
        op_bytes: 64,
        read_every: plan.read_every,
        mode: LoadMode::Closed {
            think: Duration::from_micros(opts.think_us.unwrap_or(plan.think_us)),
        },
        retransmit: None,
    };
    let hooks = ClientHooks {
        faults: Some(Arc::clone(&plane)),
        storm: Some(Arc::clone(&storm)),
    };

    let mut applied = Vec::new();
    let mut skipped = Vec::new();
    let mut tampered: Vec<u32> = Vec::new();

    // Client workers run the workload on scoped threads while this
    // thread is the chaos controller: sleep to each event's wall-clock
    // offset, apply it to the live cluster.
    let ids: Vec<ClientId> = (0..plan.clients).map(ClientId).collect();
    let outcomes: Vec<(ClientId, Result<ClientReport, String>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = ids
            .iter()
            .map(|&c| {
                let (topo, workload, hooks) = (&topo, &workload, &hooks);
                (
                    c,
                    scope.spawn(move || run_client_with(c, topo, workload, opts.deadline, hooks)),
                )
            })
            .collect();

        let t0 = Instant::now();
        for ev in &plan.events {
            let due = t0 + Duration::from_micros(ev.at.0);
            let now = Instant::now();
            if due > now {
                std::thread::sleep(due - now);
            }
            match &ev.action {
                ChaosAction::Partition(groups) => {
                    let groups: Vec<Vec<NodeId>> = groups
                        .iter()
                        .map(|g| g.iter().map(|&r| NodeId::Replica(ReplicaId(r))).collect())
                        .collect();
                    plane.partition(&groups);
                    applied.push(ev.action.to_string());
                }
                ChaosAction::HealPartition => {
                    plane.heal_partition();
                    applied.push(ev.action.to_string());
                }
                ChaosAction::DegradeLink { from, to, profile } => {
                    plane.set_link(
                        NodeId::Replica(ReplicaId(*from)),
                        NodeId::Replica(ReplicaId(*to)),
                        *profile,
                    );
                    applied.push(ev.action.to_string());
                }
                ChaosAction::RestoreLink { from, to } => {
                    plane.clear_link(
                        NodeId::Replica(ReplicaId(*from)),
                        NodeId::Replica(ReplicaId(*to)),
                    );
                    applied.push(ev.action.to_string());
                }
                ChaosAction::Isolate { replica } => {
                    plane.isolate(NodeId::Replica(ReplicaId(*replica)));
                    applied.push(ev.action.to_string());
                }
                ChaosAction::Reconnect { replica } => {
                    plane.reconnect(NodeId::Replica(ReplicaId(*replica)));
                    applied.push(ev.action.to_string());
                }
                ChaosAction::Crash { replica } => {
                    cluster.kill(ReplicaId(*replica));
                    applied.push(ev.action.to_string());
                }
                ChaosAction::Restart { replica } => {
                    cluster.restart(ReplicaId(*replica));
                    applied.push(ev.action.to_string());
                }
                ChaosAction::RetransmitStorm { clients } => {
                    storm.trigger(*clients);
                    applied.push(ev.action.to_string());
                }
                ChaosAction::TamperJournal { replica } => {
                    tampered.push(*replica);
                    applied.push(format!("{} (deferred to evaluation)", ev.action));
                }
                other @ (ChaosAction::Byzantine { .. }
                | ChaosAction::RestoreCorrect { .. }
                | ChaosAction::CorruptPage { .. }
                | ChaosAction::ForceRecovery { .. }) => {
                    skipped.push(format!("{other} (no live analogue)"));
                }
            }
        }

        handles
            .into_iter()
            .map(|(c, h)| {
                (
                    c,
                    h.join().map_err(|_| "client worker panicked".to_string()),
                )
            })
            .collect()
    });

    let mut violations = Vec::new();
    let mut ops_completed = 0;
    let mut ops_retransmitted = 0;
    for (c, outcome) in &outcomes {
        match outcome {
            Ok(report) => {
                ops_completed += report.completed;
                ops_retransmitted += report.retransmitted;
                if report.completed < workload.ops {
                    violations.push(format!(
                        "liveness: client {} completed {}/{} operations before the deadline",
                        c.0, report.completed, workload.ops
                    ));
                }
                check_counter_sequence(c.0, &workload, report, &mut violations);
            }
            Err(why) => violations.push(format!("client {} worker died: {why}", c.0)),
        }
    }

    let final_view;
    match cluster.try_wait_converged(opts.converge_timeout) {
        Ok(mut snaps) => {
            final_view = snaps.first().map(|s| s.view).unwrap_or(0);
            apply_tampers(&mut snaps, &tampered);
            if let Err(divergence) = LoopbackCluster::check_journal_agreement(&snaps) {
                violations.push(format!("safety: {divergence}"));
            }
        }
        Err(ConvergeFailure::Safety(divergence)) => {
            final_view = 0;
            violations.push(format!("safety: {divergence}"));
        }
        Err(ConvergeFailure::Timeout(diag)) => {
            final_view = diag.snaps.first().map(|s| s.view).unwrap_or(0);
            violations.push(format!("liveness: {diag}"));
        }
    }
    cluster.shutdown();

    RealnetReport {
        ok: violations.is_empty(),
        violations,
        applied,
        skipped,
        ops_completed,
        ops_retransmitted,
        final_view,
        wall: started.elapsed(),
    }
}

/// Exactly-once + read-your-writes from the client's view, identical to
/// the simulator's arithmetic: the k-th completed INC returns exactly k
/// (per-client counters), every GET returns the INCs completed so far.
fn check_counter_sequence(
    client: u32,
    workload: &Workload,
    report: &ClientReport,
    violations: &mut Vec<String>,
) {
    let mut incs = 0u64;
    for (k, (_, result)) in report.results.iter().enumerate() {
        let read = workload.op(k as u64).1;
        let Ok(bytes) = <[u8; 8]>::try_from(result.as_slice()) else {
            violations.push(format!("client {client} op {k}: short result"));
            continue;
        };
        let val = u64::from_le_bytes(bytes);
        if read {
            if val != incs {
                violations.push(format!(
                    "read-your-writes: client {client} op {k} GET returned {val}, expected {incs}"
                ));
            }
        } else {
            incs += 1;
            if val != incs {
                violations.push(format!(
                    "exactly-once: client {client} op {k} INC returned {val}, expected {incs}"
                ));
            }
        }
    }
}

/// Applies deferred `TamperJournal` events: flip one committed digest in
/// each target's snapshot so journal agreement must trip. A dead target
/// (crashed, never restarted) has no snapshot to tamper; the plan
/// generator avoids picking one, and a shrunk subset that still kills
/// the target keeps failing through the liveness check instead.
fn apply_tampers(snaps: &mut [Snapshot], tampered: &[u32]) {
    for &r in tampered {
        if let Some(snap) = snaps.iter_mut().find(|s| s.id.0 == r) {
            if let Some(entry) = snap
                .journal
                .iter_mut()
                .filter(|(seq, _)| *seq <= snap.committed_frontier)
                .max_by_key(|(seq, _)| *seq)
            {
                entry.1 .0[0] ^= 0xff;
            }
        }
    }
}
