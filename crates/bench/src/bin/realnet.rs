//! Real-network loopback experiment: wall-clock throughput and latency
//! of the PBFT stack over real TCP sockets (127.0.0.1), now measuring
//! the multi-core data plane — the MAC worker pool and §5.1.4 request
//! pipelining — against the single-threaded direct path.
//!
//! Two axes, mirroring the paper's scalability arguments:
//!
//! * **Worker scaling** at a fixed client count: the same workload with
//!   the pool off (`w0`, the PR 5 configuration) and with 1/2/4 MAC
//!   workers, one OS thread per client. On multi-core hosts this shows
//!   MAC offload; on a single-core host (CI containers) it bounds pool
//!   overhead instead — both are honest datapoints, which is why
//!   `host_cpus` is recorded.
//! * **Client scaling** with the multiplexed driver: 32/64/128
//!   closed-loop clients multiplexed onto one driver thread and one
//!   connection set (`mux_*` cases), so the load generator does not
//!   drown the host in client threads. Pipelining keeps the primary's
//!   window full as offered load grows, and batching amortizes the
//!   protocol cost — aggregate throughput grows with client count
//!   instead of serializing on one batch per round trip.
//!
//! Every case runs the safety oracle: the replicas must agree on every
//! overlapping committed-journal entry and converge to one state digest
//! at one frontier, or the number does not count. (Bit-identical
//! journals are deliberately *not* required: a replica that caught up
//! through state transfer (§5.3.2) has a legitimate gap for the range
//! it fetched as pages instead of executing.)
//!
//! Usage:
//!   cargo run -p bft-bench --release --bin realnet -- [--smoke] [--out PATH]
//!
//! Writes `BENCH_pr6.json` at the workspace root by default (resolved
//! via `CARGO_MANIFEST_DIR`, so the working directory does not matter —
//! CI matrix jobs run from different directories).

use bft_bench::{BenchReport, Json};
use bft_runtime::client::Workload;
use bft_runtime::loopback::LoopbackCluster;
use std::time::{Duration, Instant};

struct Case {
    id: &'static str,
    clients: u32,
    ops_per_client: u64,
    workers: usize,
    pipeline_depth: u64,
    /// 0 = one OS thread per client (the PR 5 load generator);
    /// >0 = the multiplexed driver with this many driver threads.
    mux_groups: usize,
}

struct Outcome {
    id: &'static str,
    clients: u32,
    workers: usize,
    pipeline_depth: u64,
    mux_groups: usize,
    ops: u64,
    wall_ms: f64,
    ops_per_sec: f64,
    mean_ms: f64,
    p50_ms: f64,
    p99_ms: f64,
    retransmitted: u64,
}

fn run_case(case: &Case) -> Outcome {
    let cluster = LoopbackCluster::start_with(1, case.clients, |topo| {
        topo.workers = case.workers;
        topo.pipeline_depth = case.pipeline_depth;
        // Benchmark tuning, recorded in the JSON `setup`: a checkpoint
        // every 128 seqnos (the tests use 16 to cross GC boundaries
        // quickly; a benchmark wants the protocol, not the checkpoint
        // chatter), and a 2s base view-change timeout so a replica
        // starved by a saturated single-core host does not start a
        // spurious view change mid-burst.
        topo.checkpoint_interval = 128;
        topo.view_change_ms = 2000;
    });
    let workload = Workload::closed(case.ops_per_client);
    let start = Instant::now();
    let reports = if case.mux_groups > 0 {
        cluster.run_clients_mux(
            case.clients,
            case.mux_groups,
            workload,
            Duration::from_secs(300),
        )
    } else {
        cluster.run_clients(case.clients, workload, Duration::from_secs(300))
    };
    let wall = start.elapsed();
    let mut completed = 0u64;
    let mut retransmitted = 0u64;
    let mut latencies: Vec<u64> = Vec::new();
    for r in &reports {
        assert_eq!(
            r.completed, case.ops_per_client,
            "client {} incomplete",
            r.client.0
        );
        completed += r.completed;
        retransmitted += r.retransmitted;
        latencies.extend(&r.latencies_us);
    }
    // Safety oracle: the experiment only counts if the replicas agree.
    let snaps = cluster
        .wait_converged(Duration::from_secs(60))
        .unwrap_or_else(|diag| panic!("{}: {diag}", case.id));
    assert_eq!(snaps.len(), 4);
    cluster.shutdown();
    latencies.sort_unstable();
    let pct = |p: f64| latencies[((latencies.len() - 1) as f64 * p).round() as usize] as f64 / 1e3;
    Outcome {
        id: case.id,
        clients: case.clients,
        workers: case.workers,
        pipeline_depth: case.pipeline_depth,
        mux_groups: case.mux_groups,
        ops: completed,
        wall_ms: wall.as_secs_f64() * 1e3,
        ops_per_sec: completed as f64 / wall.as_secs_f64(),
        mean_ms: latencies.iter().sum::<u64>() as f64 / latencies.len() as f64 / 1e3,
        p50_ms: pct(0.5),
        p99_ms: pct(0.99),
        retransmitted,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = bft_bench::report::out_path(&args, "BENCH_pr6.json");

    let cases: &[Case] = if smoke {
        // Pool off and pool on, so CI smokes both data planes, plus one
        // multiplexed-driver case so CI exercises that path too.
        &[
            Case {
                id: "loopback_c2_w0",
                clients: 2,
                ops_per_client: 40,
                workers: 0,
                pipeline_depth: 1,
                mux_groups: 0,
            },
            Case {
                id: "loopback_c2_w2",
                clients: 2,
                ops_per_client: 40,
                workers: 2,
                pipeline_depth: 8,
                mux_groups: 0,
            },
            Case {
                id: "mux_c8_w2",
                clients: 8,
                ops_per_client: 40,
                workers: 2,
                pipeline_depth: 4,
                mux_groups: 1,
            },
        ]
    } else {
        &[
            // Worker scaling at 8 clients, one OS thread per client
            // (w0/d1 = the PR 5 baseline path).
            Case {
                id: "loopback_c8_w0",
                clients: 8,
                ops_per_client: 300,
                workers: 0,
                pipeline_depth: 1,
                mux_groups: 0,
            },
            Case {
                id: "loopback_c8_w1",
                clients: 8,
                ops_per_client: 300,
                workers: 1,
                pipeline_depth: 8,
                mux_groups: 0,
            },
            Case {
                id: "loopback_c8_w2",
                clients: 8,
                ops_per_client: 300,
                workers: 2,
                pipeline_depth: 8,
                mux_groups: 0,
            },
            Case {
                id: "loopback_c8_w4",
                clients: 8,
                ops_per_client: 300,
                workers: 4,
                pipeline_depth: 8,
                mux_groups: 0,
            },
            // Client scaling with the multiplexed driver: throughput
            // grows with offered load because pipelining + batching
            // amortize the per-consensus cost.
            Case {
                id: "mux_c32_w0",
                clients: 32,
                ops_per_client: 600,
                workers: 0,
                pipeline_depth: 4,
                mux_groups: 1,
            },
            Case {
                id: "mux_c64_w0",
                clients: 64,
                ops_per_client: 600,
                workers: 0,
                pipeline_depth: 4,
                mux_groups: 1,
            },
            Case {
                id: "mux_c128_w0",
                clients: 128,
                ops_per_client: 600,
                workers: 0,
                pipeline_depth: 4,
                mux_groups: 1,
            },
            // The pool at peak load, for the worker on/off comparison at
            // scale (offload on multi-core, bounded overhead on one).
            Case {
                id: "mux_c128_w2",
                clients: 128,
                ops_per_client: 600,
                workers: 2,
                pipeline_depth: 4,
                mux_groups: 1,
            },
        ]
    };

    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "real-network loopback throughput ({} mode): f=1 over TCP 127.0.0.1, 128B mixed ops, {host_cpus} host cpu(s)",
        if smoke { "smoke" } else { "full" }
    );
    println!(
        "{:>16} {:>8} {:>4} {:>5} {:>4} {:>7} {:>10} {:>10} {:>9} {:>9} {:>9} {:>8}",
        "case",
        "clients",
        "wrk",
        "pipe",
        "mux",
        "ops",
        "wall ms",
        "ops/s",
        "mean ms",
        "p50 ms",
        "p99 ms",
        "retrans"
    );
    let mut report = BenchReport::new(
        "real-network multi-core data plane: MAC worker pool + request pipelining (PR 6)",
        "wall-clock ops/sec and latency of an f=1 cluster over TCP on 127.0.0.1",
    );
    report
        .mode(smoke)
        .host_cpus()
        .field(
            "setup",
            Json::s(
                "4 replicas + N closed-loop clients in one process, 128B ops, every 4th op \
                 read-only; workers = MAC pool threads per replica (0 = single-threaded direct \
                 path); pipeline_depth = max batches the primary keeps in flight (§5.1.4); \
                 mux_groups > 0 = clients multiplexed onto that many driver threads sharing one \
                 transport; checkpoint_interval 128, base view-change timeout 2s; after each \
                 case the replicas must agree on every overlapping journal entry and converge \
                 to one state digest",
            ),
        )
        .field(
            "note",
            Json::s(
                "worker scaling shows MAC offload on multi-core hosts and bounds pool overhead \
                 on single-core ones (see host_cpus); client scaling with the multiplexed \
                 driver is the throughput axis",
            ),
        );
    for case in cases {
        let o = run_case(case);
        println!(
            "{:>16} {:>8} {:>4} {:>5} {:>4} {:>7} {:>10.1} {:>10.1} {:>9.2} {:>9.2} {:>9.2} {:>8}",
            o.id,
            o.clients,
            o.workers,
            o.pipeline_depth,
            o.mux_groups,
            o.ops,
            o.wall_ms,
            o.ops_per_sec,
            o.mean_ms,
            o.p50_ms,
            o.p99_ms,
            o.retransmitted
        );
        report.case(Json::obj([
            ("case", Json::s(o.id)),
            ("clients", Json::U64(o.clients as u64)),
            ("workers", Json::U64(o.workers as u64)),
            ("pipeline_depth", Json::U64(o.pipeline_depth)),
            ("mux_groups", Json::U64(o.mux_groups as u64)),
            ("ops", Json::U64(o.ops)),
            ("wall_ms", Json::F(o.wall_ms, 1)),
            ("ops_per_sec", Json::F(o.ops_per_sec, 1)),
            (
                "latency_ms",
                Json::obj([
                    ("mean", Json::F(o.mean_ms, 3)),
                    ("p50", Json::F(o.p50_ms, 3)),
                    ("p99", Json::F(o.p99_ms, 3)),
                ]),
            ),
            ("retransmitted", Json::U64(o.retransmitted)),
        ]));
    }
    report.write(&out_path);
}
