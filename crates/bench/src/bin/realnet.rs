//! Real-network loopback experiment: wall-clock throughput and latency
//! of the PBFT stack over real TCP sockets (127.0.0.1), the repo's
//! first datapoint that includes kernels, sockets, threads, and a real
//! clock — the jump the paper itself makes from protocol to practical
//! system.
//!
//! Unlike the `throughput` experiment (virtual-time simulator, wall
//! clock measures only the engine), every number here includes real
//! networking. Loopback is not a datacenter link, so the value is the
//! trajectory — future transport work must not regress these numbers —
//! and the sanity oracle: all four replicas must finish with identical
//! journals.
//!
//! Usage:
//!   cargo run -p bft-bench --release --bin realnet -- [--smoke] [--out PATH]
//!
//! Writes `BENCH_pr5.json` at the workspace root by default (resolved
//! via `CARGO_MANIFEST_DIR`, so the working directory does not matter —
//! CI matrix jobs run from different directories).

use bft_runtime::client::Workload;
use bft_runtime::loopback::LoopbackCluster;
use std::time::{Duration, Instant};

struct Case {
    id: &'static str,
    clients: u32,
    ops_per_client: u64,
}

struct Outcome {
    id: &'static str,
    clients: u32,
    ops: u64,
    wall_ms: f64,
    ops_per_sec: f64,
    mean_ms: f64,
    p50_ms: f64,
    p99_ms: f64,
    retransmitted: u64,
}

fn run_case(case: &Case) -> Outcome {
    let cluster = LoopbackCluster::start(1, case.clients);
    let workload = Workload::closed(case.ops_per_client);
    let start = Instant::now();
    let reports = cluster.run_clients(case.clients, workload, Duration::from_secs(300));
    let wall = start.elapsed();
    let mut completed = 0u64;
    let mut retransmitted = 0u64;
    let mut latencies: Vec<u64> = Vec::new();
    for r in &reports {
        assert_eq!(
            r.completed, case.ops_per_client,
            "client {} incomplete",
            r.client.0
        );
        completed += r.completed;
        retransmitted += r.retransmitted;
        latencies.extend(&r.latencies_us);
    }
    // Safety oracle: the experiment only counts if the replicas agree.
    let snaps = cluster
        .wait_converged(Duration::from_secs(60))
        .expect("replicas converge to identical journals");
    assert_eq!(snaps.len(), 4);
    cluster.shutdown();
    latencies.sort_unstable();
    let pct = |p: f64| latencies[((latencies.len() - 1) as f64 * p).round() as usize] as f64 / 1e3;
    Outcome {
        id: case.id,
        clients: case.clients,
        ops: completed,
        wall_ms: wall.as_secs_f64() * 1e3,
        ops_per_sec: completed as f64 / wall.as_secs_f64(),
        mean_ms: latencies.iter().sum::<u64>() as f64 / latencies.len() as f64 / 1e3,
        p50_ms: pct(0.5),
        p99_ms: pct(0.99),
        retransmitted,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| {
            // crates/bench -> workspace root, independent of the cwd.
            format!("{}/../../BENCH_pr5.json", env!("CARGO_MANIFEST_DIR"))
        });

    let cases: &[Case] = if smoke {
        &[Case {
            id: "loopback_c2",
            clients: 2,
            ops_per_client: 40,
        }]
    } else {
        &[
            Case {
                id: "loopback_c1",
                clients: 1,
                ops_per_client: 300,
            },
            Case {
                id: "loopback_c4",
                clients: 4,
                ops_per_client: 300,
            },
            Case {
                id: "loopback_c8",
                clients: 8,
                ops_per_client: 300,
            },
        ]
    };

    println!(
        "real-network loopback throughput ({} mode): f=1 over TCP 127.0.0.1, 128B mixed ops",
        if smoke { "smoke" } else { "full" }
    );
    println!(
        "{:>14} {:>8} {:>7} {:>10} {:>10} {:>9} {:>9} {:>9} {:>8}",
        "case", "clients", "ops", "wall ms", "ops/s", "mean ms", "p50 ms", "p99 ms", "retrans"
    );
    let mut entries = Vec::new();
    for case in cases {
        let o = run_case(case);
        println!(
            "{:>14} {:>8} {:>7} {:>10.1} {:>10.1} {:>9.2} {:>9.2} {:>9.2} {:>8}",
            o.id,
            o.clients,
            o.ops,
            o.wall_ms,
            o.ops_per_sec,
            o.mean_ms,
            o.p50_ms,
            o.p99_ms,
            o.retransmitted
        );
        entries.push(format!(
            concat!(
                "    {{\n",
                "      \"case\": \"{}\",\n",
                "      \"clients\": {},\n",
                "      \"ops\": {},\n",
                "      \"wall_ms\": {:.1},\n",
                "      \"ops_per_sec\": {:.1},\n",
                "      \"latency_ms\": {{\"mean\": {:.3}, \"p50\": {:.3}, \"p99\": {:.3}}},\n",
                "      \"retransmitted\": {}\n",
                "    }}"
            ),
            o.id,
            o.clients,
            o.ops,
            o.wall_ms,
            o.ops_per_sec,
            o.mean_ms,
            o.p50_ms,
            o.p99_ms,
            o.retransmitted
        ));
    }
    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"real-network loopback throughput/latency (PR 5)\",\n",
            "  \"metric\": \"wall-clock ops/sec and latency of an f=1 cluster over TCP on 127.0.0.1\",\n",
            "  \"mode\": \"{}\",\n",
            "  \"setup\": \"4 replicas + N closed-loop clients in one process, 128B ops, every 4th op read-only; journals verified identical across replicas after each case\",\n",
            "  \"note\": \"first wall-clock-network datapoint in the perf trajectory; loopback TCP, so numbers bound protocol+stack cost, not datacenter links\",\n",
            "  \"cases\": [\n{}\n  ]\n",
            "}}\n"
        ),
        if smoke { "smoke" } else { "full" },
        entries.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("write benchmark json");
    println!("wrote {out_path}");
}
