//! Storage-engine footprint experiment (PR 10): what the CAST-style
//! column split buys a checkpoint snapshot on disk.
//!
//! The WAL storage engine writes every stable checkpoint as a
//! compressed snapshot (`snap-*.ckpt`). The compressor is a cheap
//! byte-level RLE; the win comes from the structural transformation in
//! front of it — splitting the snapshot into homogeneous columns
//! (delta-encoded last-modified seqnos, varint page lengths,
//! concatenated page bodies) before compressing, instead of running
//! the same RLE over the naive interleaved `(seqno, len, bytes)`
//! layout where 8-byte metadata breaks every payload run.
//!
//! Each case drives a real service from `bft-statemachine` through its
//! `Service` trait, snapshots its pages with clustered last-modified
//! seqnos (the distribution checkpoints produce: most pages last
//! touched near a recent checkpoint), and records three footprints:
//!
//! * `raw`: the uncompressed page data (what a snapshot costs with no
//!   encoding),
//! * `interleaved_rle`: the same RLE over the naive layout (the
//!   baseline a column-free engine would ship),
//! * `cast`: the column split + delta/RLE pipeline the engine uses.
//!
//! Every case round-trips the CAST encoding and asserts the decoded
//! pages are identical before its numbers count. The `random` case is
//! the honest worst bound: incompressible payloads, where the column
//! split must not cost more than a few bytes of framing.
//!
//! Usage:
//!   cargo run -p bft-bench --release --bin storage -- [--smoke] [--out PATH]
//!
//! Writes `BENCH_pr10.json` at the workspace root by default.

use bft_bench::{BenchReport, Json};
use bft_crypto::Digest;
use bft_statemachine::{CounterService, KvService, MemService, Service};
use bft_storage::cast::compress_pages_interleaved;
use bft_storage::CheckpointSnapshot;
use bft_types::{ClientId, Requester, SeqNo};
use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};
use std::time::Instant;

struct Outcome {
    id: &'static str,
    pages: usize,
    raw: usize,
    interleaved: usize,
    cast: usize,
    encode_us: f64,
    decode_us: f64,
}

/// Assigns the last-modified column the distribution real checkpoints
/// produce: pages cluster around a handful of past checkpoint seqnos,
/// with the dirty tail touched at the snapshot itself.
fn clustered_lm(num_pages: usize, base: u64) -> Vec<u64> {
    (0..num_pages)
        .map(|i| {
            // Four clusters, 128 seqnos apart (the checkpoint period of
            // the full realnet bench), plus a small in-cluster spread.
            let cluster = (i % 4) as u64 * 128;
            base - cluster - (i as u64 % 7)
        })
        .collect()
}

fn measure(id: &'static str, service: &dyn Service, base_seq: u64) -> Outcome {
    let lm = clustered_lm(service.num_pages() as usize, base_seq);
    let pages: Vec<(SeqNo, bytes::Bytes)> = (0..service.num_pages())
        .map(|i| (SeqNo(lm[i as usize]), service.get_page(i)))
        .collect();
    let snap = CheckpointSnapshot {
        seq: SeqNo(base_seq),
        root: Digest::zero(),
        pages,
    };

    let raw = snap.raw_bytes();
    let borrowed: Vec<(u64, &[u8])> = snap.pages.iter().map(|(lm, b)| (lm.0, &b[..])).collect();
    let interleaved = compress_pages_interleaved(&borrowed).len();

    let start = Instant::now();
    let encoded = snap.encode_compressed();
    let encode_us = start.elapsed().as_secs_f64() * 1e6;
    let start = Instant::now();
    let decoded = CheckpointSnapshot::decode_compressed(&encoded).expect("roundtrip decode");
    let decode_us = start.elapsed().as_secs_f64() * 1e6;
    // Correctness oracle: a footprint number only counts if the bytes
    // come back bit-identical.
    assert_eq!(decoded, snap, "{id}: CAST roundtrip corrupted the snapshot");

    Outcome {
        id,
        pages: snap.pages.len(),
        raw,
        interleaved,
        cast: encoded.len(),
        encode_us,
        decode_us,
    }
}

/// Per-client counters: sparse little-endian u64s in zero pages — the
/// state every sim and loopback test checkpoints.
fn counter_case(scale: u64) -> Outcome {
    // 512 counters per page; span many pages so the seqno/length columns
    // actually interleave with payload in the baseline layout.
    let clients = (8192 * scale) as u32;
    let mut svc = CounterService::new(clients);
    let mut rng = StdRng::seed_from_u64(0x57_0c);
    // A quarter of the clients are active, with skewed op counts.
    for c in 0..clients / 4 {
        let ops = 1 + rng.random_range(0..40u32);
        for _ in 0..ops {
            svc.execute(
                Requester::Client(ClientId(c * 4)),
                &[CounterService::OP_INC],
                &[],
            );
        }
    }
    measure("counter_sparse_u64", &svc, 10_000)
}

/// A key-value store with canonical sorted bucket pages: textual keys
/// and values, partially filled buckets.
fn kv_case(scale: u64) -> Outcome {
    let mut svc = KvService::new(64 * scale);
    let mut rng = StdRng::seed_from_u64(0x57_0d);
    for k in 0..800 * scale {
        let key = format!("user/{:06}/profile", k * 7 % (1000 * scale));
        let value = format!(
            "{{\"name\": \"user-{k}\", \"quota\": {}, \"flags\": 0}}",
            rng.random_range(0..1_000_000u64)
        );
        svc.execute(
            Requester::Client(ClientId((k % 97) as u32)),
            &KvService::op_put(key.as_bytes(), value.as_bytes()),
            &[],
        );
    }
    measure("kv_text_buckets", &svc, 20_000)
}

/// The §8.1 micro-benchmark memory: constant-byte payload writes over
/// zeroed pages — long runs for RLE, the compressor's best case.
fn mem_case(scale: u64) -> Outcome {
    let mut svc = MemService::new(32 * scale);
    for _ in 0..600 * scale {
        svc.execute(
            Requester::Client(ClientId(0)),
            &MemService::op_rw(128, 0),
            &[],
        );
    }
    measure("mem_constant_writes", &svc, 30_000)
}

/// Incompressible worst case: every page full of uniform random bytes.
/// The column split must cost at most framing overhead here.
fn random_case(scale: u64) -> Outcome {
    let mut svc = MemService::new(16 * scale);
    let mut rng = StdRng::seed_from_u64(0x57_0e);
    let mut page = vec![0u8; 4096];
    for i in 0..svc.num_pages() {
        rng.fill_bytes(&mut page);
        svc.put_page(i, &page);
    }
    measure("random_incompressible", &svc, 40_000)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = bft_bench::report::out_path(&args, "BENCH_pr10.json");
    let scale = if smoke { 1 } else { 8 };

    println!(
        "checkpoint snapshot footprint ({} mode): CAST column split + delta/RLE vs interleaved RLE vs raw",
        if smoke { "smoke" } else { "full" }
    );
    println!(
        "{:>22} {:>6} {:>10} {:>12} {:>10} {:>8} {:>8} {:>10} {:>10}",
        "case", "pages", "raw B", "interlv B", "cast B", "vs raw", "vs intl", "enc us", "dec us"
    );

    let mut report = BenchReport::new(
        "durable checkpoint snapshot footprint: CAST column split + delta/RLE (PR 10)",
        "on-disk bytes of a stable-checkpoint snapshot under three encodings, on real service \
         state",
    );
    report
        .mode(smoke)
        .field(
            "setup",
            Json::s(
                "each case drives a bft-statemachine service through its Service trait, then \
                 snapshots every state page with clustered last-modified seqnos (four clusters \
                 128 seqnos apart — the distribution periodic checkpoints produce); raw = \
                 uncompressed page data, interleaved_rle = the same byte-level RLE over the \
                 naive (seqno, len, bytes) layout, cast = the engine's column split \
                 (delta-encoded seqno column, varint length column, concatenated bodies) + \
                 RLE; every case round-trips the CAST encoding and asserts bit-identical pages \
                 before its numbers count",
            ),
        )
        .field(
            "note",
            Json::s(
                "the column split is what makes the cheap RLE effective: interleaved 8-byte \
                 seqnos break every payload run, so ratio_vs_interleaved isolates the \
                 structural transformation from the compressor; random_incompressible bounds \
                 the framing cost on adversarial state (ratios ~1.0, never far below)",
            ),
        );

    let outcomes = [
        counter_case(scale),
        kv_case(scale),
        mem_case(scale),
        random_case(scale),
    ];
    for o in &outcomes {
        let vs_raw = o.raw as f64 / o.cast as f64;
        let vs_interleaved = o.interleaved as f64 / o.cast as f64;
        println!(
            "{:>22} {:>6} {:>10} {:>12} {:>10} {:>7.2}x {:>7.2}x {:>10.1} {:>10.1}",
            o.id,
            o.pages,
            o.raw,
            o.interleaved,
            o.cast,
            vs_raw,
            vs_interleaved,
            o.encode_us,
            o.decode_us
        );
        report.case(Json::obj([
            ("case", Json::s(o.id)),
            ("pages", Json::U64(o.pages as u64)),
            ("raw_bytes", Json::U64(o.raw as u64)),
            ("interleaved_rle_bytes", Json::U64(o.interleaved as u64)),
            ("cast_bytes", Json::U64(o.cast as u64)),
            ("ratio_vs_raw", Json::F(vs_raw, 3)),
            ("ratio_vs_interleaved", Json::F(vs_interleaved, 3)),
            ("encode_us", Json::F(o.encode_us, 1)),
            ("decode_us", Json::F(o.decode_us, 1)),
        ]));
    }

    // The acceptance bar: on every structured-state case the pipeline
    // must beat both the raw layout and the interleaved baseline.
    for o in &outcomes {
        if o.id != "random_incompressible" {
            assert!(
                o.cast < o.interleaved && o.cast < o.raw,
                "{}: CAST ({}) must beat interleaved ({}) and raw ({})",
                o.id,
                o.cast,
                o.interleaved,
                o.raw
            );
        }
    }

    report.write(&out_path);
}
