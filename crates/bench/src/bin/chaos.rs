//! Chaos campaign driver: seeded adversarial fault schedules against the
//! full PBFT stack, checked by the safety/liveness oracle, with automatic
//! shrinking of failing seeds to a minimal reproducible schedule.
//!
//! Usage:
//!   cargo run -p bft-bench --release --bin chaos -- --seeds 50
//!   cargo run -p bft-bench --release --bin chaos -- --seed 7 [--only 1,4]
//!   cargo run -p bft-bench --release --bin chaos -- --realnet --seeds 10
//!   cargo run -p bft-bench --release --bin chaos -- --smoke
//!
//! Flags:
//!   --seeds N            run the campaign over seeds 0..N
//!   --seed S             run (and print) one seed's full plan and report
//!   --only a,b,c         restrict the seed's plan to the listed episodes
//!   --realnet            replay schedules against a live loopback TCP
//!                        cluster (real sockets, real clock) instead of
//!                        the virtual-time simulator
//!   --inject-violation   add the deliberate journal-tamper episode
//!   --verify-oracle      prove the oracle catches an injected violation
//!                        and the shrinker isolates it (exits 1 otherwise)
//!   --smoke              CI mode: a short campaign plus --verify-oracle
//!                        (with --realnet: fewer seeds, reduced workload)
//!   --debug              with --seed: dump per-replica diagnostics
//!                        (simulator mode only)
//!   --fail-dir PATH      write failing shrunk schedules here (default
//!                        chaos-failures/ at the workspace root, resolved
//!                        via CARGO_MANIFEST_DIR so the cwd is irrelevant)
//!
//! A failing seed is shrunk by delta debugging over whole fault episodes
//! and written to the fail dir as a replayable one-liner plus the minimal
//! schedule; the process exits nonzero. Realnet failures shrink through
//! the same delta debugging with live replays as the failure predicate.

use bft_bench::realnet_chaos::{run_realnet_plan, RealnetOpts, RealnetReport};
use bft_sim::chaos::{debug_run, run_plan, shrink, shrink_with, ChaosAction, ChaosPlan};
use std::io::Write as _;
use std::time::Instant;

struct Args {
    seeds: Option<u64>,
    seed: Option<u64>,
    only: Option<Vec<u32>>,
    realnet: bool,
    inject_violation: bool,
    verify_oracle: bool,
    smoke: bool,
    debug: bool,
    fail_dir: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        seeds: None,
        seed: None,
        only: None,
        realnet: false,
        inject_violation: false,
        verify_oracle: false,
        smoke: false,
        debug: false,
        // Resolve relative to the workspace root, not the cwd: CI matrix
        // jobs (and developers) run this from arbitrary directories.
        fail_dir: concat!(env!("CARGO_MANIFEST_DIR"), "/../../chaos-failures").to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seeds" => args.seeds = Some(it.next().expect("--seeds N").parse().expect("number")),
            "--seed" => args.seed = Some(it.next().expect("--seed S").parse().expect("number")),
            "--only" => {
                args.only = Some(
                    it.next()
                        .expect("--only a,b,c")
                        .split(',')
                        .map(|s| s.parse().expect("episode index"))
                        .collect(),
                )
            }
            "--realnet" => args.realnet = true,
            "--inject-violation" => args.inject_violation = true,
            "--verify-oracle" => args.verify_oracle = true,
            "--smoke" => args.smoke = true,
            "--debug" => args.debug = true,
            "--fail-dir" => args.fail_dir = it.next().expect("--fail-dir PATH"),
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    args
}

fn plan_for(seed: u64, realnet: bool, inject: bool, only: &Option<Vec<u32>>) -> ChaosPlan {
    let plan = match (realnet, inject) {
        (false, false) => ChaosPlan::generate(seed),
        (false, true) => ChaosPlan::generate_with_violation(seed),
        (true, false) => ChaosPlan::generate_realnet(seed),
        (true, true) => ChaosPlan::generate_realnet_with_violation(seed),
    };
    match only {
        Some(eps) => plan.filter_episodes(eps),
        None => plan,
    }
}

/// Live-replay knobs: the smoke campaign trims the workload so a CI
/// run stays in wall-clock budget; the full soak keeps the plan's own
/// workload shape.
fn realnet_opts(smoke: bool) -> RealnetOpts {
    if smoke {
        RealnetOpts {
            ops_per_client: Some(12),
            think_us: Some(5_000),
            ..RealnetOpts::default()
        }
    } else {
        RealnetOpts::default()
    }
}

fn print_realnet_report(report: &RealnetReport) {
    for s in &report.skipped {
        println!("    skipped: {s}");
    }
    for v in &report.violations {
        println!("    {v}");
    }
}

/// Runs one seed; on failure, shrinks and records the minimal schedule.
/// Returns true when the oracle held.
fn run_seed(seed: u64, inject: bool, fail_dir: &str) -> bool {
    let plan = plan_for(seed, false, inject, &None);
    let t0 = Instant::now();
    let report = run_plan(&plan);
    let ms = t0.elapsed().as_millis();
    if report.ok {
        println!(
            "seed {seed:>4}: ok   ({} ops, {} retransmitted, view {}, {ms}ms)",
            report.ops_completed, report.ops_retransmitted, report.final_view
        );
        return true;
    }
    println!(
        "seed {seed:>4}: FAIL ({} violations, {ms}ms)",
        report.violations.len()
    );
    for v in &report.violations {
        println!("    {v}");
    }
    let minimal = shrink(&plan);
    let min_report = run_plan(&minimal);
    let mut text = String::new();
    text.push_str(&format!(
        "seed {seed} failed the chaos oracle\n\nviolations:\n"
    ));
    for v in &min_report.violations {
        text.push_str(&format!("  {v}\n"));
    }
    text.push_str(&format!("\nminimal schedule:\n{minimal}"));
    text.push_str(&format!(
        "\nreproduce with:\n  {}\n",
        minimal.repro_command()
    ));
    print!("{text}");
    let _ = std::fs::create_dir_all(fail_dir);
    let path = format!("{fail_dir}/seed_{seed}.txt");
    if let Ok(mut f) = std::fs::File::create(&path) {
        let _ = f.write_all(text.as_bytes());
        println!("  written to {path}");
    }
    false
}

/// [`run_seed`] against the live loopback cluster: same report shape,
/// same fail-file format, but the shrinker's failure predicate replays
/// candidate schedules over real sockets.
fn run_seed_realnet(seed: u64, fail_dir: &str, opts: &RealnetOpts) -> bool {
    let plan = plan_for(seed, true, false, &None);
    let t0 = Instant::now();
    let report = run_realnet_plan(&plan, opts);
    let ms = t0.elapsed().as_millis();
    if report.ok {
        println!(
            "seed {seed:>4}: ok   ({} ops, {} retransmitted, view {}, {} faults live, \
             {} skipped, {ms}ms)",
            report.ops_completed,
            report.ops_retransmitted,
            report.final_view,
            report.applied.len(),
            report.skipped.len(),
        );
        return true;
    }
    println!(
        "seed {seed:>4}: FAIL ({} violations, {ms}ms)",
        report.violations.len()
    );
    print_realnet_report(&report);
    let minimal = shrink_with(&plan, |p| !run_realnet_plan(p, opts).ok);
    let min_report = run_realnet_plan(&minimal, opts);
    let mut text = String::new();
    text.push_str(&format!(
        "seed {seed} failed the realnet chaos oracle\n\nviolations:\n"
    ));
    for v in &min_report.violations {
        text.push_str(&format!("  {v}\n"));
    }
    text.push_str(&format!("\nminimal schedule:\n{minimal}"));
    text.push_str(&format!(
        "\nreproduce with:\n  {}\n",
        minimal.repro_command()
    ));
    print!("{text}");
    let _ = std::fs::create_dir_all(fail_dir);
    let path = format!("{fail_dir}/realnet_seed_{seed}.txt");
    if let Ok(mut f) = std::fs::File::create(&path) {
        let _ = f.write_all(text.as_bytes());
        println!("  written to {path}");
    }
    false
}

/// [`verify_oracle`] against the live cluster: the deferred journal
/// tamper must surface as a safety violation and live-replay shrinking
/// must isolate the tamper episode.
fn verify_oracle_realnet(seed: u64, opts: &RealnetOpts) -> bool {
    let plan = ChaosPlan::generate_realnet_with_violation(seed);
    let report = run_realnet_plan(&plan, opts);
    if report.ok {
        eprintln!("verify-oracle (realnet): injected violation NOT caught for seed {seed}");
        return false;
    }
    if !report.violations.iter().any(|v| v.starts_with("safety:")) {
        eprintln!(
            "verify-oracle (realnet): violation caught but not as a safety violation: {:?}",
            report.violations
        );
        return false;
    }
    let minimal = shrink_with(&plan, |p| !run_realnet_plan(p, opts).ok);
    let eps = minimal.episodes();
    let tamper_only = eps.len() == 1
        && minimal
            .events
            .iter()
            .all(|e| matches!(e.action, ChaosAction::TamperJournal { .. }));
    if !tamper_only {
        eprintln!(
            "verify-oracle (realnet): shrink left {} episodes ({} events), expected the \
             tamper alone:\n{minimal}",
            eps.len(),
            minimal.events.len()
        );
        return false;
    }
    println!(
        "verify-oracle (realnet) seed {seed}: violation caught live and shrunk to the \
         single tamper event ({})",
        minimal.repro_command()
    );
    true
}

/// Proves the oracle and shrinker work: an injected journal tamper must
/// be caught, and shrinking must isolate the tamper episode.
fn verify_oracle(seed: u64) -> bool {
    let plan = ChaosPlan::generate_with_violation(seed);
    let report = run_plan(&plan);
    if report.ok {
        eprintln!("verify-oracle: injected violation NOT caught for seed {seed}");
        return false;
    }
    if !report.violations.iter().any(|v| v.starts_with("safety:")) {
        eprintln!(
            "verify-oracle: violation caught but not as a safety violation: {:?}",
            report.violations
        );
        return false;
    }
    let minimal = shrink(&plan);
    let eps = minimal.episodes();
    let tamper_only = eps.len() == 1
        && minimal
            .events
            .iter()
            .all(|e| matches!(e.action, ChaosAction::TamperJournal { .. }));
    if !tamper_only {
        eprintln!(
            "verify-oracle: shrink left {} episodes ({} events), expected the tamper alone:\n{minimal}",
            eps.len(),
            minimal.events.len()
        );
        return false;
    }
    println!(
        "verify-oracle seed {seed}: violation caught and shrunk to the single tamper event ({})",
        minimal.repro_command()
    );
    true
}

fn main() {
    let args = parse_args();
    let mut ok = true;
    let opts = realnet_opts(args.smoke);

    if let Some(seed) = args.seed {
        let plan = plan_for(seed, args.realnet, args.inject_violation, &args.only);
        print!("{plan}");
        if args.realnet {
            let report = run_realnet_plan(&plan, &opts);
            println!(
                "result: {} ({} ops, {} retransmitted, final view {}, {} faults live, \
                 {} skipped, {:.1}s)",
                if report.ok { "ok" } else { "FAIL" },
                report.ops_completed,
                report.ops_retransmitted,
                report.final_view,
                report.applied.len(),
                report.skipped.len(),
                report.wall.as_secs_f64(),
            );
            print_realnet_report(&report);
            if !report.ok && args.only.is_none() {
                let minimal = shrink_with(&plan, |p| !run_realnet_plan(p, &opts).ok);
                println!("minimal schedule:\n{minimal}");
                println!("reproduce with: {}", minimal.repro_command());
            }
            ok &= report.ok;
        } else {
            if args.debug {
                print!("{}", debug_run(&plan));
            }
            let report = run_plan(&plan);
            println!(
                "result: {} ({} ops, {} retransmitted, final view {})",
                if report.ok { "ok" } else { "FAIL" },
                report.ops_completed,
                report.ops_retransmitted,
                report.final_view
            );
            for v in &report.violations {
                println!("  {v}");
            }
            println!("fingerprint: {}", report.fingerprint);
            if !report.ok && args.only.is_none() {
                let minimal = shrink(&plan);
                println!("minimal schedule:\n{minimal}");
                println!("reproduce with: {}", minimal.repro_command());
            }
            ok &= report.ok;
        }
    }

    // A live replay costs real wall-clock seconds per seed, so the
    // realnet smoke covers fewer seeds than the simulator smoke.
    let default_seeds = match (args.smoke, args.realnet) {
        (true, true) => 3,
        (true, false) => 6,
        (false, _) => 0,
    };
    let seeds = args.seeds.unwrap_or(default_seeds);
    if seeds > 0 {
        let t0 = Instant::now();
        let mut failures = 0u64;
        for seed in 0..seeds {
            let green = if args.realnet {
                run_seed_realnet(seed, &args.fail_dir, &opts)
            } else {
                run_seed(seed, false, &args.fail_dir)
            };
            if !green {
                failures += 1;
            }
        }
        println!(
            "campaign: {}/{seeds} seeds green in {:.1}s",
            seeds - failures,
            t0.elapsed().as_secs_f64()
        );
        ok &= failures == 0;
    }

    if args.verify_oracle || args.smoke {
        ok &= if args.realnet {
            verify_oracle_realnet(1, &opts)
        } else {
            verify_oracle(1)
        };
    }

    if args.seed.is_none() && seeds == 0 && !args.verify_oracle && !args.smoke {
        eprintln!("nothing to do: pass --seeds N, --seed S, --smoke, or --verify-oracle");
        std::process::exit(2);
    }
    std::process::exit(if ok { 0 } else { 1 });
}
