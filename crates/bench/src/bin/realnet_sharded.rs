//! Sharded real-network throughput: aggregate ops/sec of 1, 2, and 4
//! independent PBFT groups over live TCP on 127.0.0.1, with a fixed
//! total number of multiplexed clients partitioned across the shards
//! (single-shard routing — each client's keys live wholly on its
//! shard).
//!
//! One PBFT group serializes on its primary: one batch pipeline, one
//! MAC fan-out, one commit wave at a time. Sharding multiplies the
//! pipelines; since the groups share nothing but the host, aggregate
//! throughput should approach linear in the shard count until the host
//! runs out of cores. That scaling curve — and where it flattens — is
//! the datapoint this benchmark records.
//!
//! Every case runs each shard's safety oracle before its number counts:
//! all replicas of a group must agree on every overlapping
//! committed-journal entry and converge to one state digest at one
//! frontier.
//!
//! Usage:
//!   cargo run -p bft-bench --release --bin realnet_sharded -- [--smoke] [--out PATH]
//!
//! Writes `BENCH_pr8.json` at the workspace root by default.

use bft_bench::{BenchReport, Json};
use bft_runtime::client::Workload;
use bft_runtime::loopback::ShardedLoopback;
use std::time::{Duration, Instant};

struct Case {
    id: &'static str,
    shards: u32,
    /// Clients per shard (total = shards * clients).
    clients: u32,
    ops_per_client: u64,
}

struct Outcome {
    id: &'static str,
    shards: u32,
    clients_total: u32,
    ops: u64,
    wall_ms: f64,
    ops_per_sec: f64,
    mean_ms: f64,
    p50_ms: f64,
    p99_ms: f64,
    retransmitted: u64,
}

fn run_case(case: &Case) -> Outcome {
    let cluster = ShardedLoopback::start_with(1, case.clients, case.shards, |topo| {
        // Benchmark tuning, mirroring the single-group realnet bench: a
        // long checkpoint period (the protocol, not checkpoint chatter)
        // and a generous view-change timeout so a host saturated by
        // 4*shards replica processes does not start spurious view
        // changes mid-burst.
        topo.checkpoint_interval = 128;
        topo.view_change_ms = 4000;
        topo.pipeline_depth = 4;
    });
    let mut workload = Workload::closed(case.ops_per_client);
    // Under full load the transport's bounded per-peer queues can drop
    // frames (that is their contract); the default retransmit timeout
    // (half the view-change timeout) turns each drop into a 2s stall
    // that dominates the tail. Retry fast instead.
    workload.retransmit = Some(Duration::from_millis(250));
    let start = Instant::now();
    let reports = cluster.run_clients_mux(case.clients, 1, &workload, Duration::from_secs(300));
    let wall = start.elapsed();
    let mut completed = 0u64;
    let mut retransmitted = 0u64;
    let mut latencies: Vec<u64> = Vec::new();
    for (k, shard_reports) in reports.iter().enumerate() {
        for r in shard_reports {
            assert_eq!(
                r.completed, case.ops_per_client,
                "shard {k} client {} incomplete",
                r.client.0
            );
            completed += r.completed;
            retransmitted += r.retransmitted;
            latencies.extend(&r.latencies_us);
        }
    }
    // Per-shard safety oracle: every group must agree with itself.
    let snaps = cluster.wait_all_converged(Duration::from_secs(60));
    assert_eq!(snaps.len(), case.shards as usize);
    for (k, shard_snaps) in snaps.iter().enumerate() {
        assert_eq!(shard_snaps.len(), 4, "shard {k} lost a replica");
    }
    cluster.shutdown();
    latencies.sort_unstable();
    let pct = |p: f64| latencies[((latencies.len() - 1) as f64 * p).round() as usize] as f64 / 1e3;
    Outcome {
        id: case.id,
        shards: case.shards,
        clients_total: case.shards * case.clients,
        ops: completed,
        wall_ms: wall.as_secs_f64() * 1e3,
        ops_per_sec: completed as f64 / wall.as_secs_f64(),
        mean_ms: latencies.iter().sum::<u64>() as f64 / latencies.len() as f64 / 1e3,
        p50_ms: pct(0.5),
        p99_ms: pct(0.99),
        retransmitted,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = bft_bench::report::out_path(&args, "BENCH_pr8.json");

    // Fixed total offered load (strong scaling): 64 mux clients split
    // across the shards, so the curve isolates the extra consensus
    // pipelines rather than extra load.
    let cases: &[Case] = if smoke {
        &[
            Case {
                id: "sharded_s1",
                shards: 1,
                clients: 8,
                ops_per_client: 40,
            },
            Case {
                id: "sharded_s2",
                shards: 2,
                clients: 4,
                ops_per_client: 40,
            },
        ]
    } else {
        &[
            Case {
                id: "sharded_s1",
                shards: 1,
                clients: 64,
                ops_per_client: 400,
            },
            Case {
                id: "sharded_s2",
                shards: 2,
                clients: 32,
                ops_per_client: 400,
            },
            Case {
                id: "sharded_s4",
                shards: 4,
                clients: 16,
                ops_per_client: 400,
            },
        ]
    };

    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "sharded real-network throughput ({} mode): f=1 groups over TCP 127.0.0.1, 128B mixed ops, {host_cpus} host cpu(s)",
        if smoke { "smoke" } else { "full" }
    );
    println!(
        "{:>12} {:>7} {:>8} {:>7} {:>10} {:>10} {:>9} {:>9} {:>9} {:>8} {:>8}",
        "case",
        "shards",
        "clients",
        "ops",
        "wall ms",
        "ops/s",
        "mean ms",
        "p50 ms",
        "p99 ms",
        "retrans",
        "speedup"
    );
    let mut report = BenchReport::new(
        "sharded real-network throughput: N independent PBFT groups over TCP (PR 8)",
        "aggregate wall-clock ops/sec of 1/2/4 f=1 groups on 127.0.0.1 at fixed total offered load",
    );
    report
        .mode(smoke)
        .host_cpus()
        .field(
            "setup",
            Json::s(
                "each shard is 4 replicas + its share of 64 multiplexed closed-loop clients in \
                 one process; 128B ops, every 4th read-only; clients are partitioned across \
                 shards (single-shard routing, disjoint per-shard key material derived from one \
                 key_seed); checkpoint_interval 128, view-change timeout 4s, pipeline_depth 4; \
                 after each case every shard's replicas must agree on overlapping journal \
                 entries and converge to one state digest",
            ),
        )
        .field(
            "note",
            Json::s(
                "one group serializes on its primary's pipeline; shards multiply pipelines, so \
                 aggregate throughput grows toward linear only while the host has spare cores \
                 (see host_cpus). On a host with fewer cores than shards the curve inverts: the \
                 groups time-share the CPU and each sees fewer clients, so request batching per \
                 consensus instance shrinks and aggregate throughput drops below the 1-shard \
                 baseline — the speedup_vs_1shard column is only meaningful relative to \
                 host_cpus",
            ),
        );
    let mut base_ops_per_sec = 0.0f64;
    for case in cases {
        let o = run_case(case);
        if case.shards == 1 {
            base_ops_per_sec = o.ops_per_sec;
        }
        let speedup = if base_ops_per_sec > 0.0 {
            o.ops_per_sec / base_ops_per_sec
        } else {
            0.0
        };
        println!(
            "{:>12} {:>7} {:>8} {:>7} {:>10.1} {:>10.1} {:>9.2} {:>9.2} {:>9.2} {:>8} {:>7.2}x",
            o.id,
            o.shards,
            o.clients_total,
            o.ops,
            o.wall_ms,
            o.ops_per_sec,
            o.mean_ms,
            o.p50_ms,
            o.p99_ms,
            o.retransmitted,
            speedup
        );
        report.case(Json::obj([
            ("case", Json::s(o.id)),
            ("shards", Json::U64(o.shards as u64)),
            ("clients_total", Json::U64(o.clients_total as u64)),
            ("ops", Json::U64(o.ops)),
            ("wall_ms", Json::F(o.wall_ms, 1)),
            ("ops_per_sec", Json::F(o.ops_per_sec, 1)),
            ("speedup_vs_1shard", Json::F(speedup, 3)),
            (
                "latency_ms",
                Json::obj([
                    ("mean", Json::F(o.mean_ms, 3)),
                    ("p50", Json::F(o.p50_ms, 3)),
                    ("p99", Json::F(o.p99_ms, 3)),
                ]),
            ),
            ("retransmitted", Json::U64(o.retransmitted)),
        ]));
    }
    report.write(&out_path);
}
