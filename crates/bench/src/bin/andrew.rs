//! The paper's headline experiment over real sockets: the Andrew
//! benchmark on BFS, replicated over live TCP, versus the unreplicated
//! baseline (§8.6).
//!
//! Usage:
//!   cargo run -p bft-bench --release --bin andrew -- [--smoke] [--out PATH]
//!                                                    [--clients N] [--scale K]
//!
//! Writes `BENCH_pr9.json` at the workspace root by default. Two modes
//! over one script:
//!
//! * **Application mode** (the headline): the benchmark's client-side
//!   compute — checksumming copies, scanning reads, compiling sources —
//!   runs between file ops, exactly as the real Andrew benchmark does.
//!   `overhead_vs_unreplicated` comes from this mode; it is the analogue
//!   of the paper's "BFS is ~3% slower than NFS-std" headline, which
//!   holds *because* Andrew is application-dominated.
//! * **RPC replay** (transparency): the same script with zero compute
//!   between ops — a pure file-op stress, the analogue of the paper's
//!   §8.3 micro-benchmarks, where per-op overhead is expected to be
//!   several-fold. Reported as `overhead_rpc_only`.
//!
//! `overhead_vs_direct` (the in-process floor with zero wire cost) is
//! recorded for transparency in both modes.

use bfs::AndrewConfig;
use bft_bench::andrew::{overhead, percentile_ms, run_cases, CaseOutcome};
use bft_bench::{BenchReport, Json};

fn print_outcomes(outcomes: &[CaseOutcome]) {
    for o in outcomes {
        println!("{}:", o.id);
        for p in &o.run.phases {
            let mut lat = p.latencies_us.clone();
            lat.sort_unstable();
            println!(
                "  {:<14} {:>5} ops in {:>9.2}ms  p50 {:>7.2}ms p99 {:>7.2}ms",
                p.phase,
                p.ops,
                p.wall.as_secs_f64() * 1e3,
                percentile_ms(&lat, 0.5),
                percentile_ms(&lat, 0.99),
            );
        }
        println!(
            "  total: {} ops in {:.2}s = {:.1} ops/s, {} retransmitted",
            o.run.completed,
            o.run.total_wall.as_secs_f64(),
            o.run.ops_per_sec(),
            o.run.retransmitted,
        );
    }
}

/// `(fast_on_vs_tcp, fast_off_vs_tcp, fast_on_vs_direct, fast_off_vs_direct)`
fn ratios(outcomes: &[CaseOutcome], prefix: &str) -> (f64, f64, f64, f64) {
    let by_id = |suffix: &str| -> &CaseOutcome {
        let id = format!("{prefix}{suffix}");
        outcomes.iter().find(|o| o.id == id).expect("known case id")
    };
    let fast = by_id("replicated_fast_paths");
    let slow = by_id("replicated_no_fast_paths");
    let tcp = by_id("unreplicated_tcp");
    let direct = by_id("unreplicated_direct");
    (
        overhead(&fast.run, &tcp.run),
        overhead(&slow.run, &tcp.run),
        overhead(&fast.run, &direct.run),
        overhead(&slow.run, &direct.run),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = bft_bench::report::out_path(&args, "BENCH_pr9.json");

    let (mut cfg, mut clients) = if smoke {
        (AndrewConfig::tiny(), 4)
    } else {
        // Scale 10 sustains enough in-phase concurrency for batching to
        // amortize the protocol; 64 multiplexed clients saturate the
        // pipeline without drowning a small host in connection threads.
        (
            AndrewConfig {
                scale: 10,
                ..AndrewConfig::default()
            },
            64,
        )
    };
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse::<u32>().ok())
    };
    if let Some(n) = flag("--clients") {
        clients = n as usize;
    }
    if let Some(k) = flag("--scale") {
        cfg.scale = k;
    }
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "Andrew over live TCP ({} mode): f=1 BFS cluster on 127.0.0.1 vs unreplicated, {clients} clients, {host_cpus} host cpu(s)",
        if smoke { "smoke" } else { "full" },
    );

    let reps = if smoke { 1 } else { 3 };
    println!("--- application mode (compute between file ops, as the real benchmark runs) ---");
    let app = run_cases(&cfg, clients, true, reps);
    let total_ops = app[0].run.completed;
    println!(
        "script: {total_ops} ops (dirs={}, files/dir={}, file={}B, scale={})",
        cfg.dirs, cfg.files_per_dir, cfg.file_size, cfg.scale
    );
    print_outcomes(&app);
    println!("--- RPC replay (no compute: pure file-op stress) ---");
    let rpc = run_cases(&cfg, clients, false, reps);
    print_outcomes(&rpc);
    let outcomes: Vec<CaseOutcome> = app.into_iter().chain(rpc).collect();
    for o in &outcomes {
        assert_eq!(
            o.run.completed, total_ops,
            "{}: op count differs across configurations",
            o.id
        );
    }

    let (app_fast, app_slow, app_dfast, app_dslow) = ratios(&outcomes, "");
    let (rpc_fast, rpc_slow, rpc_dfast, rpc_dslow) = ratios(&outcomes, "rpc_");
    println!(
        "application overhead vs unreplicated TCP: fast paths on {app_fast:.2}x, off {app_slow:.2}x (paper: ~1.03x)",
    );
    println!(
        "RPC-only overhead vs unreplicated TCP: fast paths on {rpc_fast:.2}x, off {rpc_slow:.2}x (micro-benchmark analogue)",
    );
    println!(
        "overhead vs in-process direct (floor): application {app_dfast:.2}x, rpc {rpc_dfast:.2}x",
    );

    let mut report = BenchReport::new(
        "Andrew benchmark over live TCP: replicated BFS vs unreplicated (PR 9)",
        "per-phase wall clock and replicated/unreplicated overhead of the Andrew benchmark on \
         an f=1 BFS cluster over 127.0.0.1 TCP",
    );
    report
        .mode(smoke)
        .host_cpus()
        .field(
            "andrew",
            Json::obj([
                ("dirs", Json::U64(cfg.dirs as u64)),
                ("files_per_dir", Json::U64(cfg.files_per_dir as u64)),
                ("file_bytes", Json::U64(cfg.file_size as u64)),
                ("scale", Json::U64(cfg.scale as u64)),
                ("ops", Json::U64(total_ops)),
                ("clients", Json::U64(clients as u64)),
            ]),
        )
        .field(
            "setup",
            Json::s(format!(
                "one script, four configurations per mode: replicated with read-only + \
                 tentative fast paths, replicated with both fast paths disabled, an \
                 unreplicated BFS server over the same loopback TCP with the same number of \
                 closed-loop connections (the paper's NFS-std analogue), and in-process direct \
                 execution (zero wire cost, transparency floor); {clients} clients share one \
                 dependency-aware scheduler so phases are barriers and op-order constraints \
                 hold; each case is the median-total-wall run of {reps} repetition(s); after \
                 each replicated case the replicas must agree on overlapping journals and \
                 converge to one state digest"
            )),
        )
        .field(
            "modes",
            Json::s(
                "application mode charges the benchmark's client-side compute (checksum \
                 copies, scan reads, compile sources) on every completion, identically in all \
                 four configurations — the paper's headline is about this mode, and holds \
                 because Andrew is application-dominated; rpc_* cases replay the same script \
                 with zero compute between ops, the analogue of the paper's section-8.3 \
                 micro-benchmarks where several-fold per-op overhead is expected",
            ),
        )
        .field(
            "overhead_vs_unreplicated",
            Json::obj([
                ("fast_paths_on", Json::F(app_fast, 3)),
                ("fast_paths_off", Json::F(app_slow, 3)),
            ]),
        )
        .field(
            "overhead_rpc_only",
            Json::obj([
                ("fast_paths_on", Json::F(rpc_fast, 3)),
                ("fast_paths_off", Json::F(rpc_slow, 3)),
            ]),
        )
        .field(
            "overhead_vs_direct",
            Json::obj([
                (
                    "app",
                    Json::obj([
                        ("fast_paths_on", Json::F(app_dfast, 3)),
                        ("fast_paths_off", Json::F(app_dslow, 3)),
                    ]),
                ),
                (
                    "rpc",
                    Json::obj([
                        ("fast_paths_on", Json::F(rpc_dfast, 3)),
                        ("fast_paths_off", Json::F(rpc_dslow, 3)),
                    ]),
                ),
            ]),
        );
    for o in &outcomes {
        let phases: Vec<Json> = o
            .run
            .phases
            .iter()
            .map(|p| {
                let mut lat = p.latencies_us.clone();
                lat.sort_unstable();
                Json::obj([
                    ("phase", Json::s(p.phase)),
                    ("ops", Json::U64(p.ops)),
                    ("wall_ms", Json::F(p.wall.as_secs_f64() * 1e3, 2)),
                    ("p50_ms", Json::F(percentile_ms(&lat, 0.5), 3)),
                    ("p99_ms", Json::F(percentile_ms(&lat, 0.99), 3)),
                ])
            })
            .collect();
        let all = o.run.sorted_latencies_us();
        report.case(Json::obj([
            ("case", Json::s(o.id)),
            ("ops", Json::U64(o.run.completed)),
            (
                "total_wall_ms",
                Json::F(o.run.total_wall.as_secs_f64() * 1e3, 2),
            ),
            ("ops_per_sec", Json::F(o.run.ops_per_sec(), 1)),
            (
                "latency_ms",
                Json::obj([
                    ("p50", Json::F(percentile_ms(&all, 0.5), 3)),
                    ("p99", Json::F(percentile_ms(&all, 0.99), 3)),
                ]),
            ),
            ("retransmitted", Json::U64(o.run.retransmitted)),
            ("phases", Json::Arr(phases)),
        ]));
    }
    report.write(&out_path);
}
