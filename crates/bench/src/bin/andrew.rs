//! The paper's headline experiment over real sockets: the Andrew
//! benchmark on BFS, replicated over live TCP, versus the unreplicated
//! baseline (§8.6).
//!
//! Usage:
//!   cargo run -p bft-bench --release --bin andrew -- [--smoke] [--out PATH]
//!                                                    [--clients N] [--scale K]
//!
//! Writes `BENCH_pr9.json` at the workspace root by default. Two modes
//! over one script:
//!
//! * **Application mode** (the headline): the benchmark's client-side
//!   compute — checksumming copies, scanning reads, compiling sources —
//!   runs between file ops, exactly as the real Andrew benchmark does.
//!   `overhead_vs_unreplicated` comes from this mode; it is the analogue
//!   of the paper's "BFS is ~3% slower than NFS-std" headline, which
//!   holds *because* Andrew is application-dominated.
//! * **RPC replay** (transparency): the same script with zero compute
//!   between ops — a pure file-op stress, the analogue of the paper's
//!   §8.3 micro-benchmarks, where per-op overhead is expected to be
//!   several-fold. Reported as `overhead_rpc_only`.
//!
//! `overhead_vs_direct` (the in-process floor with zero wire cost) is
//! recorded for transparency in both modes.

use bfs::AndrewConfig;
use bft_bench::andrew::{overhead, percentile_ms, run_cases, CaseOutcome};

fn print_outcomes(outcomes: &[CaseOutcome]) {
    for o in outcomes {
        println!("{}:", o.id);
        for p in &o.run.phases {
            let mut lat = p.latencies_us.clone();
            lat.sort_unstable();
            println!(
                "  {:<14} {:>5} ops in {:>9.2}ms  p50 {:>7.2}ms p99 {:>7.2}ms",
                p.phase,
                p.ops,
                p.wall.as_secs_f64() * 1e3,
                percentile_ms(&lat, 0.5),
                percentile_ms(&lat, 0.99),
            );
        }
        println!(
            "  total: {} ops in {:.2}s = {:.1} ops/s, {} retransmitted",
            o.run.completed,
            o.run.total_wall.as_secs_f64(),
            o.run.ops_per_sec(),
            o.run.retransmitted,
        );
    }
}

/// `(fast_on_vs_tcp, fast_off_vs_tcp, fast_on_vs_direct, fast_off_vs_direct)`
fn ratios(outcomes: &[CaseOutcome], prefix: &str) -> (f64, f64, f64, f64) {
    let by_id = |suffix: &str| -> &CaseOutcome {
        let id = format!("{prefix}{suffix}");
        outcomes.iter().find(|o| o.id == id).expect("known case id")
    };
    let fast = by_id("replicated_fast_paths");
    let slow = by_id("replicated_no_fast_paths");
    let tcp = by_id("unreplicated_tcp");
    let direct = by_id("unreplicated_direct");
    (
        overhead(&fast.run, &tcp.run),
        overhead(&slow.run, &tcp.run),
        overhead(&fast.run, &direct.run),
        overhead(&slow.run, &direct.run),
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| {
            // crates/bench -> workspace root, independent of the cwd.
            format!("{}/../../BENCH_pr9.json", env!("CARGO_MANIFEST_DIR"))
        });

    let (mut cfg, mut clients) = if smoke {
        (AndrewConfig::tiny(), 4)
    } else {
        // Scale 10 sustains enough in-phase concurrency for batching to
        // amortize the protocol; 64 multiplexed clients saturate the
        // pipeline without drowning a small host in connection threads.
        (
            AndrewConfig {
                scale: 10,
                ..AndrewConfig::default()
            },
            64,
        )
    };
    let flag = |name: &str| {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1))
            .and_then(|v| v.parse::<u32>().ok())
    };
    if let Some(n) = flag("--clients") {
        clients = n as usize;
    }
    if let Some(k) = flag("--scale") {
        cfg.scale = k;
    }
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "Andrew over live TCP ({} mode): f=1 BFS cluster on 127.0.0.1 vs unreplicated, {clients} clients, {host_cpus} host cpu(s)",
        if smoke { "smoke" } else { "full" },
    );

    let reps = if smoke { 1 } else { 3 };
    println!("--- application mode (compute between file ops, as the real benchmark runs) ---");
    let app = run_cases(&cfg, clients, true, reps);
    let total_ops = app[0].run.completed;
    println!(
        "script: {total_ops} ops (dirs={}, files/dir={}, file={}B, scale={})",
        cfg.dirs, cfg.files_per_dir, cfg.file_size, cfg.scale
    );
    print_outcomes(&app);
    println!("--- RPC replay (no compute: pure file-op stress) ---");
    let rpc = run_cases(&cfg, clients, false, reps);
    print_outcomes(&rpc);
    let outcomes: Vec<CaseOutcome> = app.into_iter().chain(rpc).collect();
    for o in &outcomes {
        assert_eq!(
            o.run.completed, total_ops,
            "{}: op count differs across configurations",
            o.id
        );
    }

    let (app_fast, app_slow, app_dfast, app_dslow) = ratios(&outcomes, "");
    let (rpc_fast, rpc_slow, rpc_dfast, rpc_dslow) = ratios(&outcomes, "rpc_");
    println!(
        "application overhead vs unreplicated TCP: fast paths on {app_fast:.2}x, off {app_slow:.2}x (paper: ~1.03x)",
    );
    println!(
        "RPC-only overhead vs unreplicated TCP: fast paths on {rpc_fast:.2}x, off {rpc_slow:.2}x (micro-benchmark analogue)",
    );
    println!(
        "overhead vs in-process direct (floor): application {app_dfast:.2}x, rpc {rpc_dfast:.2}x",
    );

    let mut entries = Vec::new();
    for o in &outcomes {
        let phases: Vec<String> = o
            .run
            .phases
            .iter()
            .map(|p| {
                let mut lat = p.latencies_us.clone();
                lat.sort_unstable();
                format!(
                    "        {{\"phase\": \"{}\", \"ops\": {}, \"wall_ms\": {:.2}, \"p50_ms\": {:.3}, \"p99_ms\": {:.3}}}",
                    p.phase,
                    p.ops,
                    p.wall.as_secs_f64() * 1e3,
                    percentile_ms(&lat, 0.5),
                    percentile_ms(&lat, 0.99),
                )
            })
            .collect();
        let all = o.run.sorted_latencies_us();
        entries.push(format!(
            concat!(
                "    {{\n",
                "      \"case\": \"{}\",\n",
                "      \"ops\": {},\n",
                "      \"total_wall_ms\": {:.2},\n",
                "      \"ops_per_sec\": {:.1},\n",
                "      \"latency_ms\": {{\"p50\": {:.3}, \"p99\": {:.3}}},\n",
                "      \"retransmitted\": {},\n",
                "      \"phases\": [\n{}\n      ]\n",
                "    }}"
            ),
            o.id,
            o.run.completed,
            o.run.total_wall.as_secs_f64() * 1e3,
            o.run.ops_per_sec(),
            percentile_ms(&all, 0.5),
            percentile_ms(&all, 0.99),
            o.run.retransmitted,
            phases.join(",\n"),
        ));
    }
    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"Andrew benchmark over live TCP: replicated BFS vs unreplicated (PR 9)\",\n",
            "  \"metric\": \"per-phase wall clock and replicated/unreplicated overhead of the Andrew benchmark on an f=1 BFS cluster over 127.0.0.1 TCP\",\n",
            "  \"mode\": \"{}\",\n",
            "  \"host_cpus\": {},\n",
            "  \"andrew\": {{\"dirs\": {}, \"files_per_dir\": {}, \"file_bytes\": {}, \"scale\": {}, \"ops\": {}, \"clients\": {}}},\n",
            "  \"setup\": \"one script, four configurations per mode: replicated with read-only + tentative fast paths, replicated with both fast paths disabled, an unreplicated BFS server over the same loopback TCP with the same number of closed-loop connections (the paper's NFS-std analogue), and in-process direct execution (zero wire cost, transparency floor); {} clients share one dependency-aware scheduler so phases are barriers and op-order constraints hold; each case is the median-total-wall run of {} repetition(s); after each replicated case the replicas must agree on overlapping journals and converge to one state digest\",\n",
            "  \"modes\": \"application mode charges the benchmark's client-side compute (checksum copies, scan reads, compile sources) on every completion, identically in all four configurations — the paper's headline is about this mode, and holds because Andrew is application-dominated; rpc_* cases replay the same script with zero compute between ops, the analogue of the paper's section-8.3 micro-benchmarks where several-fold per-op overhead is expected\",\n",
            "  \"overhead_vs_unreplicated\": {{\"fast_paths_on\": {:.3}, \"fast_paths_off\": {:.3}}},\n",
            "  \"overhead_rpc_only\": {{\"fast_paths_on\": {:.3}, \"fast_paths_off\": {:.3}}},\n",
            "  \"overhead_vs_direct\": {{\"app\": {{\"fast_paths_on\": {:.3}, \"fast_paths_off\": {:.3}}}, \"rpc\": {{\"fast_paths_on\": {:.3}, \"fast_paths_off\": {:.3}}}}},\n",
            "  \"cases\": [\n{}\n  ]\n",
            "}}\n"
        ),
        if smoke { "smoke" } else { "full" },
        host_cpus,
        cfg.dirs,
        cfg.files_per_dir,
        cfg.file_size,
        cfg.scale,
        total_ops,
        clients,
        clients,
        reps,
        app_fast,
        app_slow,
        rpc_fast,
        rpc_slow,
        app_dfast,
        app_dslow,
        rpc_dfast,
        rpc_dslow,
        entries.join(",\n"),
    );
    std::fs::write(&out_path, &json).expect("write benchmark json");
    println!("wrote {out_path}");
}
