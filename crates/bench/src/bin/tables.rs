//! Regenerates the thesis evaluation tables and figures.
//!
//! Usage: `cargo run -p bft-bench --release --bin tables -- <experiment>`
//! where `<experiment>` is one of e821, e822, e823, e831, e831v, e832,
//! e833, e834, e835, e841, e842, e85, e862, e863, e7, or `all`.

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    match arg.as_str() {
        "e821" => bft_bench::run_e821(),
        "e822" => bft_bench::run_e822(),
        "e823" => bft_bench::run_e823(),
        "e831" => bft_bench::run_e831(),
        "e831v" => bft_bench::run_e831v(),
        "e832" => bft_bench::run_e832(),
        "e833" => bft_bench::run_e833(),
        "e834" => bft_bench::run_e834(),
        "e835" => bft_bench::run_e835(),
        "e841" => bft_bench::run_e841(),
        "e842" => bft_bench::run_e842(),
        "e85" => bft_bench::run_e85(),
        "e862" => bft_bench::run_e862(),
        "e863" => bft_bench::run_e863(),
        "e7" => bft_bench::run_e7(),
        "all" => bft_bench::run_all(),
        other => {
            eprintln!("unknown experiment {other:?}; see DESIGN.md §4 for ids");
            std::process::exit(1);
        }
    }
}
