//! Normal-case throughput experiment: wall-clock requests/sec of the
//! simulated cluster under sustained closed-loop load, for f = 1..3 with
//! batching on and off.
//!
//! The simulator's virtual-time numbers are a pure function of the cost
//! model and never change when the implementation gets faster; what this
//! experiment tracks is the *real* time the stack needs to push a message
//! through the pipeline (encode, digest, MAC, clone, deliver). That is the
//! quantity the zero-copy message plumbing (shared `Bytes` payloads,
//! memoized digests, scratch-buffer encoding, `Rc<Message>` fan-out) is
//! meant to improve, and the quantity future scaling PRs must not regress.
//!
//! Usage:
//!   cargo run -p bft-bench --release --bin throughput -- [--smoke] [--out PATH]
//!
//! `--smoke` runs a reduced workload (for CI); `--out` overrides the JSON
//! destination (default `BENCH_pr2.json` in the current directory). The
//! JSON records, per configuration, the baseline ("before") requests/sec
//! measured at the pre-refactor commit and the live ("after") measurement,
//! plus their ratio.

use bft_sim::{counter_cluster, ClusterConfig, OpGen};
use bft_types::SimTime;
use bytes::Bytes;
use std::time::Instant;

/// Padded increment operation: first byte selects OP_INC, the rest models
/// a realistic request body that the plumbing must carry end to end.
const OP_BYTES: usize = 128;

/// Wall-clock requests/sec measured at the seed of this PR (commit
/// 9dffc93, before the zero-copy refactor), with the full workload on the
/// reference dev machine — the mean of two runs (run-to-run spread was
/// under 5%). Keyed by case id. Regenerate by checking out the baseline
/// commit, copying this binary in, and running without `--smoke`.
const BASELINE_WALL_OPS_PER_SEC: &[(&str, f64)] = &[
    ("f1_batched", 5565.7),
    ("f1_unbatched", 5434.3),
    ("f2_batched", 2068.5),
    ("f2_unbatched", 2121.7),
    ("f3_batched", 1096.5),
    ("f3_unbatched", 1107.0),
];

struct Case {
    id: &'static str,
    f: usize,
    batching: bool,
}

struct Outcome {
    id: &'static str,
    f: usize,
    batching: bool,
    ops: u64,
    wall_ms: f64,
    wall_ops_per_sec: f64,
    virtual_ops_per_sec: f64,
}

fn run_case(case: &Case, clients: u32, ops_per_client: u64) -> Outcome {
    let mut config = ClusterConfig::test(case.f, clients);
    config.seed = 0x7117 + case.f as u64;
    config.replica = bft_core::ReplicaConfig::small(case.f);
    config.replica.num_clients = clients.max(config.replica.num_clients);
    config.replica.opts.batching = case.batching;
    let mut cluster = counter_cluster(config);
    let mut op = vec![bft_statemachine::CounterService::OP_INC];
    op.resize(OP_BYTES, 0xb7);
    let op = Bytes::from(op);
    // Warm-up is deliberately skipped: allocator behavior from a cold
    // start is part of what the experiment observes.
    let start = Instant::now();
    cluster.set_workload(OpGen::fixed(op, false, ops_per_client));
    let done = cluster.run_to_completion(SimTime(3_600_000_000));
    let wall = start.elapsed();
    assert!(done, "workload must complete within the virtual deadline");
    let ops = cluster.metrics.ops_completed;
    assert_eq!(ops, clients as u64 * ops_per_client);
    Outcome {
        id: case.id,
        f: case.f,
        batching: case.batching,
        ops,
        wall_ms: wall.as_secs_f64() * 1e3,
        wall_ops_per_sec: ops as f64 / wall.as_secs_f64(),
        virtual_ops_per_sec: cluster.metrics.throughput_ops_per_sec(),
    }
}

fn baseline_for(id: &str) -> f64 {
    BASELINE_WALL_OPS_PER_SEC
        .iter()
        .find(|(k, _)| *k == id)
        .map(|(_, v)| *v)
        .unwrap_or(f64::NAN)
}

fn json_num(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.1}")
    } else {
        "null".to_string()
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_pr2.json".to_string());
    let (clients, ops_per_client) = if smoke { (4, 25) } else { (8, 150) };

    let cases = [
        Case {
            id: "f1_batched",
            f: 1,
            batching: true,
        },
        Case {
            id: "f1_unbatched",
            f: 1,
            batching: false,
        },
        Case {
            id: "f2_batched",
            f: 2,
            batching: true,
        },
        Case {
            id: "f2_unbatched",
            f: 2,
            batching: false,
        },
        Case {
            id: "f3_batched",
            f: 3,
            batching: true,
        },
        Case {
            id: "f3_unbatched",
            f: 3,
            batching: false,
        },
    ];

    println!(
        "normal-case throughput ({} mode): {} clients x {} ops, {}B ops",
        if smoke { "smoke" } else { "full" },
        clients,
        ops_per_client,
        OP_BYTES
    );
    println!(
        "{:>12} {:>3} {:>9} {:>7} {:>10} {:>12} {:>12} {:>9}",
        "case", "f", "batching", "ops", "wall ms", "wall ops/s", "virt ops/s", "speedup"
    );

    let mut entries = Vec::new();
    for case in &cases {
        let o = run_case(case, clients, ops_per_client);
        // The recorded baselines were measured with the FULL workload; a
        // smoke run is startup-dominated and usually on different (CI)
        // hardware, so comparing against them would record a ratio that
        // reflects workload size, not the code. Smoke reports no speedup.
        let before = if smoke { f64::NAN } else { baseline_for(o.id) };
        let speedup = o.wall_ops_per_sec / before;
        println!(
            "{:>12} {:>3} {:>9} {:>7} {:>10.1} {:>12.1} {:>12.1} {:>9}",
            o.id,
            o.f,
            o.batching,
            o.ops,
            o.wall_ms,
            o.wall_ops_per_sec,
            o.virtual_ops_per_sec,
            if speedup.is_finite() {
                format!("{speedup:.2}x")
            } else {
                "n/a".to_string()
            }
        );
        entries.push(format!(
            concat!(
                "    {{\n",
                "      \"case\": \"{}\",\n",
                "      \"f\": {},\n",
                "      \"batching\": {},\n",
                "      \"clients\": {},\n",
                "      \"ops\": {},\n",
                "      \"op_bytes\": {},\n",
                "      \"before\": {{\"wall_ops_per_sec\": {}}},\n",
                "      \"after\": {{\"wall_ops_per_sec\": {}, \"wall_ms\": {}, \"virtual_ops_per_sec\": {}}},\n",
                "      \"speedup\": {}\n",
                "    }}"
            ),
            o.id,
            o.f,
            o.batching,
            clients,
            o.ops,
            OP_BYTES,
            json_num(before),
            json_num(o.wall_ops_per_sec),
            json_num(o.wall_ms),
            json_num(o.virtual_ops_per_sec),
            json_num(speedup),
        ));
    }

    let json = format!(
        concat!(
            "{{\n",
            "  \"experiment\": \"normal-case throughput (zero-copy message plumbing, PR 2)\",\n",
            "  \"metric\": \"wall-clock requests/sec of the simulated cluster\",\n",
            "  \"mode\": \"{}\",\n",
            "  \"baseline\": \"pre-refactor seed (PR 1), full workload, reference dev machine\",\n",
            "  \"note\": \"virtual_ops_per_sec is cost-model bound and must be identical before/after; speedup compares wall-clock only and is meaningful only when before/after ran the full workload on the same hardware — smoke mode reports before/speedup as null\",\n",
            "  \"cases\": [\n{}\n  ]\n",
            "}}\n"
        ),
        if smoke { "smoke" } else { "full" },
        entries.join(",\n")
    );
    std::fs::write(&out_path, &json).expect("write benchmark json");
    println!("wrote {out_path}");
}
