//! Scaled-up normal-case throughput experiment: wall-clock requests/sec
//! of the simulated cluster under sustained closed-loop load, for
//! f = 1..3 with batching on and off, 32 clients x ~10k operations per
//! case.
//!
//! The simulator's virtual-time numbers are a pure function of the cost
//! model and never change when the implementation gets faster; what this
//! experiment tracks is the *real* time the engine needs to push an event
//! through the pipeline (schedule, deliver, digest, MAC, log). That is
//! the quantity the PR 4 event-engine overhaul (timer-wheel scheduler
//! with a slab event arena, fx-hash/no-op-digest hash maps, shared
//! `Rc<PrePrepare>` records, `Bytes` state pages) is meant to improve,
//! and the quantity future scaling PRs must not regress.
//!
//! Usage:
//!   cargo run -p bft-bench --release --bin throughput -- \
//!       [--smoke] [--profile] [--out PATH]
//!
//! `--smoke` runs a reduced workload (for CI). `--profile` adds a second,
//! instrumented run per case and prints the wall-clock breakdown by
//! engine component (the timed run stays un-instrumented so the recorded
//! numbers are clean). `--out` overrides the JSON destination (default
//! `BENCH_pr4.json` in the current directory). The JSON records, per
//! configuration, the pre-refactor baseline ("before") requests/sec,
//! the PR 2 recorded "after" numbers for trajectory, and the live
//! ("after") measurement, plus their ratios.

use bft_bench::{BenchReport, Json};
use bft_sim::{counter_cluster, Cluster, ClusterConfig, EngineProfile, OpGen};
use bft_statemachine::CounterService;
use bft_types::SimTime;
use bytes::Bytes;
use std::time::Instant;

/// Padded increment operation: first byte selects OP_INC, the rest models
/// a realistic request body that the plumbing must carry end to end.
const OP_BYTES: usize = 128;

/// Wall-clock requests/sec measured at the seed of this PR (commit
/// 7d8b904, the PR 2/3 `BinaryHeap` + SipHash engine), with this
/// binary's full workload (32 clients x 313 ops) on the reference dev
/// machine. Keyed by case id. Regenerate by checking out the baseline
/// commit, copying this binary in, and running without `--smoke`.
const BASELINE_WALL_OPS_PER_SEC: &[(&str, f64)] = &[
    ("f1_batched", 18833.2),
    ("f1_unbatched", 9324.4),
    ("f2_batched", 8287.7),
    ("f2_unbatched", 3339.0),
    ("f3_batched", 4630.6),
    ("f3_unbatched", 1681.5),
];

/// The PR 2 "after" numbers recorded in `BENCH_pr2.json` (8 clients x
/// 150 ops on the same reference machine) — the trajectory the issue's
/// acceptance criterion measures against.
const PR2_AFTER_WALL_OPS_PER_SEC: &[(&str, f64)] = &[
    ("f1_batched", 9210.8),
    ("f1_unbatched", 10025.7),
    ("f2_batched", 3543.8),
    ("f2_unbatched", 3629.8),
    ("f3_batched", 1912.3),
    ("f3_unbatched", 1812.7),
];

struct Case {
    id: &'static str,
    f: usize,
    batching: bool,
}

struct Outcome {
    id: &'static str,
    f: usize,
    batching: bool,
    ops: u64,
    wall_ms: f64,
    wall_ops_per_sec: f64,
    virtual_ops_per_sec: f64,
}

fn build_cluster(case: &Case, clients: u32) -> Cluster<CounterService> {
    let mut config = ClusterConfig::test(case.f, clients);
    config.seed = 0x7117 + case.f as u64;
    config.replica = bft_core::ReplicaConfig::small(case.f);
    config.replica.num_clients = clients.max(config.replica.num_clients);
    config.replica.opts.batching = case.batching;
    counter_cluster(config)
}

fn workload(ops_per_client: u64) -> OpGen {
    let mut op = vec![CounterService::OP_INC];
    op.resize(OP_BYTES, 0xb7);
    OpGen::fixed(Bytes::from(op), false, ops_per_client)
}

fn run_case(case: &Case, clients: u32, ops_per_client: u64) -> Outcome {
    let mut cluster = build_cluster(case, clients);
    // Warm-up is deliberately skipped: allocator behavior from a cold
    // start is part of what the experiment observes.
    let start = Instant::now();
    cluster.set_workload(workload(ops_per_client));
    let done = cluster.run_to_completion(SimTime(3_600_000_000));
    let wall = start.elapsed();
    assert!(done, "workload must complete within the virtual deadline");
    let ops = cluster.metrics.ops_completed;
    assert_eq!(ops, clients as u64 * ops_per_client);
    Outcome {
        id: case.id,
        f: case.f,
        batching: case.batching,
        ops,
        wall_ms: wall.as_secs_f64() * 1e3,
        wall_ops_per_sec: ops as f64 / wall.as_secs_f64(),
        virtual_ops_per_sec: cluster.metrics.throughput_ops_per_sec(),
    }
}

/// A second, instrumented run of the case for the `--profile` breakdown.
fn profile_case(case: &Case, clients: u32, ops_per_client: u64) -> (EngineProfile, f64) {
    let mut cluster = build_cluster(case, clients);
    cluster.enable_profiling();
    let start = Instant::now();
    cluster.set_workload(workload(ops_per_client));
    assert!(cluster.run_to_completion(SimTime(3_600_000_000)));
    (cluster.profile, start.elapsed().as_secs_f64() * 1e3)
}

fn print_profile(p: &EngineProfile, wall_ms: f64) {
    let total = p.total_ns().max(1) as f64;
    let row = |name: &str, ns: u64| {
        println!(
            "    {:<10} {:>9.1}ms  {:>5.1}%",
            name,
            ns as f64 / 1e6,
            100.0 * ns as f64 / total
        );
    };
    println!("  engine breakdown (instrumented run, {wall_ms:.1}ms wall):");
    row("scheduler", p.sched_ns);
    row("replica", p.replica_ns);
    row("client", p.client_ns);
    row("route", p.route_ns);
    row("cost-model", p.cost_ns);
    println!(
        "    {:<10} {:>9.1}ms  (un-instrumented gap: dispatch glue, frames, allocator)",
        "profiled",
        total / 1e6
    );
}

fn lookup(table: &[(&str, f64)], id: &str) -> f64 {
    table
        .iter()
        .find(|(k, _)| *k == id)
        .map(|(_, v)| *v)
        .unwrap_or(f64::NAN)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let profile = args.iter().any(|a| a == "--profile");
    let out_path = bft_bench::report::out_path(&args, "BENCH_pr4.json");
    let (clients, ops_per_client) = if smoke { (4, 25) } else { (32, 313) };

    let cases = [
        Case {
            id: "f1_batched",
            f: 1,
            batching: true,
        },
        Case {
            id: "f1_unbatched",
            f: 1,
            batching: false,
        },
        Case {
            id: "f2_batched",
            f: 2,
            batching: true,
        },
        Case {
            id: "f2_unbatched",
            f: 2,
            batching: false,
        },
        Case {
            id: "f3_batched",
            f: 3,
            batching: true,
        },
        Case {
            id: "f3_unbatched",
            f: 3,
            batching: false,
        },
    ];

    println!(
        "normal-case throughput ({} mode): {} clients x {} ops ({} total), {}B ops",
        if smoke { "smoke" } else { "full" },
        clients,
        ops_per_client,
        clients as u64 * ops_per_client,
        OP_BYTES
    );
    println!(
        "{:>12} {:>3} {:>9} {:>7} {:>10} {:>12} {:>12} {:>9} {:>9}",
        "case", "f", "batching", "ops", "wall ms", "wall ops/s", "virt ops/s", "vs pr3", "vs pr2"
    );

    let mut report = BenchReport::new(
        "scaled normal-case throughput (event-engine overhaul, PR 4)",
        "wall-clock requests/sec of the simulated cluster",
    );
    report
        .mode(smoke)
        .field(
            "baseline",
            Json::s(
                "pre-refactor engine (PR 2/3: BinaryHeap scheduler, SipHash maps), \
                 full workload, reference dev machine",
            ),
        )
        .field(
            "note",
            Json::s(
                "virtual_ops_per_sec is cost-model bound and must be identical before/after; \
                 speedup_vs_before compares the same workload on the same hardware across \
                 engines; speedup_vs_pr2_after tracks the BENCH_pr2 -> BENCH_pr4 trajectory \
                 (PR 2 ran 8 clients x 150 ops); smoke mode reports ratios as null",
            ),
        );
    for case in &cases {
        let o = run_case(case, clients, ops_per_client);
        // The recorded baselines were measured with the FULL workload; a
        // smoke run is startup-dominated and usually on different (CI)
        // hardware, so comparing against them would record a ratio that
        // reflects workload size, not the code. Smoke reports no speedup.
        let before = if smoke {
            f64::NAN
        } else {
            lookup(BASELINE_WALL_OPS_PER_SEC, o.id)
        };
        let pr2_after = if smoke {
            f64::NAN
        } else {
            lookup(PR2_AFTER_WALL_OPS_PER_SEC, o.id)
        };
        let speedup = o.wall_ops_per_sec / before;
        let speedup_pr2 = o.wall_ops_per_sec / pr2_after;
        let fmt_ratio = |r: f64| {
            if r.is_finite() {
                format!("{r:.2}x")
            } else {
                "n/a".to_string()
            }
        };
        println!(
            "{:>12} {:>3} {:>9} {:>7} {:>10.1} {:>12.1} {:>12.1} {:>9} {:>9}",
            o.id,
            o.f,
            o.batching,
            o.ops,
            o.wall_ms,
            o.wall_ops_per_sec,
            o.virtual_ops_per_sec,
            fmt_ratio(speedup),
            fmt_ratio(speedup_pr2),
        );
        if profile {
            let (p, wall_ms) = profile_case(case, clients, ops_per_client);
            print_profile(&p, wall_ms);
        }
        report.case(Json::obj([
            ("case", Json::s(o.id)),
            ("f", Json::U64(o.f as u64)),
            ("batching", Json::Bool(o.batching)),
            ("clients", Json::U64(clients as u64)),
            ("ops", Json::U64(o.ops)),
            ("op_bytes", Json::U64(OP_BYTES as u64)),
            (
                "before",
                Json::obj([("wall_ops_per_sec", Json::F(before, 1))]),
            ),
            (
                "pr2_after",
                Json::obj([("wall_ops_per_sec", Json::F(pr2_after, 1))]),
            ),
            (
                "after",
                Json::obj([
                    ("wall_ops_per_sec", Json::F(o.wall_ops_per_sec, 1)),
                    ("wall_ms", Json::F(o.wall_ms, 1)),
                    ("virtual_ops_per_sec", Json::F(o.virtual_ops_per_sec, 1)),
                ]),
            ),
            ("speedup_vs_before", Json::F(speedup, 1)),
            ("speedup_vs_pr2_after", Json::F(speedup_pr2, 1)),
        ]));
    }
    report.write(&out_path);
}
