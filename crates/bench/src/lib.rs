//! Shared helpers for the benchmark harness (the `tables` binary and the
//! Criterion benches). Each public `run_*` function regenerates one
//! Chapter 8 table or figure; see `DESIGN.md` §4 for the experiment index
//! and `EXPERIMENTS.md` for recorded paper-vs-measured outcomes.

use bfs::AndrewConfig;
use bft_core::config::{AuthMode, Optimizations};
use bft_sim::scenarios::{self, MicroOp};
use bft_types::SimDuration;
use std::time::Instant;

pub mod andrew;
pub mod realnet_chaos;
pub mod report;

pub use report::{BenchReport, Json};

/// Prints a table header.
pub fn header(id: &str, title: &str) {
    println!("\n=== {id}: {title} ===");
}

/// E-8.2.1: real digest-computation cost versus input size.
pub fn run_e821() {
    header(
        "E-8.2.1",
        "MD5 digest computation cost (measured, real time)",
    );
    println!("{:>10} {:>14} {:>12}", "bytes", "us/op", "MB/s");
    for size in [64usize, 256, 1024, 4096, 8192] {
        let data = vec![0xa5u8; size];
        let iters = 20_000;
        let start = Instant::now();
        let mut acc = 0u8;
        for _ in 0..iters {
            acc ^= bft_crypto::digest(&data).0[0];
        }
        std::hint::black_box(acc);
        let us = start.elapsed().as_secs_f64() * 1e6 / iters as f64;
        println!("{:>10} {:>14.3} {:>12.1}", size, us, size as f64 / us);
    }
}

/// E-8.2.2: MAC / authenticator / signature costs (the three-orders gap).
pub fn run_e822() {
    header(
        "E-8.2.2",
        "MAC vs authenticator vs signature cost (measured, real time)",
    );
    let key = bft_crypto::SessionKey::from_seed(1);
    let msg = vec![0u8; 64];
    let iters = 50_000;
    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(bft_crypto::hmac::mac(&key, &msg));
    }
    let mac_us = start.elapsed().as_secs_f64() * 1e6 / iters as f64;
    println!("single MAC (64B header):        {mac_us:>10.3} us");

    for n in [4usize, 7, 13, 37] {
        let keys: Vec<_> = (0..n as u64)
            .map(bft_crypto::SessionKey::from_seed)
            .collect();
        let iters = 10_000;
        let start = Instant::now();
        for i in 0..iters {
            std::hint::black_box(bft_crypto::Authenticator::generate(&keys, i, &msg));
        }
        let us = start.elapsed().as_secs_f64() * 1e6 / iters as f64;
        println!("authenticator n={n:<3} generate:   {us:>10.3} us");
    }

    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(7);
    let kp = bft_crypto::KeyPair::generate_with_bits(&mut rng, 1024);
    let start = Instant::now();
    let sig_iters = 20;
    for _ in 0..sig_iters {
        std::hint::black_box(kp.sign(&msg));
    }
    let sign_us = start.elapsed().as_secs_f64() * 1e6 / sig_iters as f64;
    let sig = kp.sign(&msg);
    let start = Instant::now();
    let ver_iters = 200;
    for _ in 0..ver_iters {
        std::hint::black_box(kp.public.verify(&msg, &sig));
    }
    let verify_us = start.elapsed().as_secs_f64() * 1e6 / ver_iters as f64;
    println!("1024-bit signature sign:        {sign_us:>10.1} us");
    println!("1024-bit signature verify:      {verify_us:>10.1} us");
    println!(
        "sign / MAC ratio:               {:>10.0}x   (thesis: ~3 orders of magnitude)",
        sign_us / mac_us
    );
}

/// E-8.2.3: the wire cost model.
pub fn run_e823() {
    header("E-8.2.3", "communication model (configured parameters)");
    let m = bft_net::CostModel::thesis_testbed();
    println!(
        "{:>10} {:>16} {:>16}",
        "bytes", "one-way (us)", "round trip (us)"
    );
    for size in [64usize, 1024, 4096, 8192] {
        let ow = m.one_way_us(size) + m.recv.eval(size);
        println!("{:>10} {:>16.1} {:>16.1}", size, ow, 2.0 * ow);
    }
}

/// E-8.3.1: micro-benchmark latency table (BFT vs BFT-PK vs unreplicated).
pub fn run_e831() {
    header(
        "E-8.3.1",
        "latency: 0/0, 4/0, 0/4 (virtual us; read-only and read-write)",
    );
    let model = bft_net::CostModel::thesis_testbed();
    let unrep = |arg: usize, res: usize| {
        model.one_way_us(arg + 64)
            + model.recv.eval(arg + 64)
            + model.execute_us
            + model.one_way_us(res + 64)
            + model.recv.eval(res + 64)
    };
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>14} {:>10}",
        "op", "BFT rw", "BFT ro", "BFT-PK rw", "unreplicated", "slowdown"
    );
    for (name, op) in [
        ("0/0", MicroOp::zero_zero()),
        ("4/0", MicroOp::four_zero()),
        ("0/4", MicroOp::zero_four()),
    ] {
        let rw = scenarios::latency(op, AuthMode::Macs, Optimizations::all(), 40);
        let ro = scenarios::latency(
            MicroOp {
                read_only: true,
                ..op
            },
            AuthMode::Macs,
            Optimizations::all(),
            40,
        );
        let pk = scenarios::latency(op, AuthMode::Signatures, Optimizations::all(), 6);
        let u = unrep(op.arg, op.result);
        println!(
            "{:<8} {:>12.0} {:>12.0} {:>12.0} {:>14.0} {:>9.1}x",
            name,
            rw.mean_us,
            ro.mean_us,
            pk.mean_us,
            u,
            rw.mean_us / u
        );
    }
    println!("(shape check: ro < rw, BFT-PK >> BFT, slowdown vs unreplicated small constant)");
}

/// E-8.3.1-V: latency versus argument / result size.
pub fn run_e831v() {
    header(
        "E-8.3.1-V",
        "latency vs argument and result size (virtual us)",
    );
    println!("{:>10} {:>14} {:>14}", "KB", "arg-grow rw", "res-grow ro");
    for kb in [0usize, 1, 2, 4, 8] {
        let arg = scenarios::latency(
            MicroOp {
                arg: kb * 1024,
                result: 0,
                read_only: false,
            },
            AuthMode::Macs,
            Optimizations::all(),
            25,
        );
        let res = scenarios::latency(
            MicroOp {
                arg: 0,
                result: kb * 1024,
                read_only: true,
            },
            AuthMode::Macs,
            Optimizations::all(),
            25,
        );
        println!("{:>10} {:>14.0} {:>14.0}", kb, arg.mean_us, res.mean_us);
    }
}

/// E-8.3.2: throughput versus number of clients.
pub fn run_e832() {
    header("E-8.3.2", "throughput vs clients (virtual ops/s)");
    println!(
        "{:>10} {:>12} {:>12} {:>12}",
        "clients", "0/0", "4/0", "0/4 ro"
    );
    for clients in [1u32, 5, 10, 20, 40] {
        let t00 = scenarios::throughput(MicroOp::zero_zero(), 1, clients, 60);
        let t40 = scenarios::throughput(MicroOp::four_zero(), 1, clients, 30);
        let t04 = scenarios::throughput(
            MicroOp {
                read_only: true,
                ..MicroOp::zero_four()
            },
            1,
            clients,
            30,
        );
        println!(
            "{:>10} {:>12.0} {:>12.0} {:>12.0}",
            clients, t00.ops_per_sec, t40.ops_per_sec, t04.ops_per_sec
        );
    }
}

/// E-8.3.3: impact of each optimization (ablation).
pub fn run_e833() {
    header("E-8.3.3", "optimization ablation, 0/0 latency (virtual us)");
    let base = scenarios::latency(
        MicroOp::zero_zero(),
        AuthMode::Macs,
        Optimizations::all(),
        40,
    );
    println!("{:<28} {:>12} {:>10}", "configuration", "latency", "vs all");
    println!(
        "{:<28} {:>12.0} {:>9.2}x",
        "all optimizations", base.mean_us, 1.0
    );
    type OptTweak = fn(&mut Optimizations);
    let variants: [(&str, OptTweak); 3] = [
        ("no tentative execution", |o| o.tentative_execution = false),
        ("no digest replies", |o| o.digest_replies = false),
        ("no separate transmission", |o| {
            o.separate_request_transmission = false
        }),
    ];
    for (name, tweak) in variants {
        let mut opts = Optimizations::all();
        tweak(&mut opts);
        let r = scenarios::latency(MicroOp::zero_zero(), AuthMode::Macs, opts, 40);
        println!(
            "{:<28} {:>12.0} {:>9.2}x",
            name,
            r.mean_us,
            r.mean_us / base.mean_us
        );
    }
    // Digest replies matter for large results; measure with 0/4.
    let with = scenarios::latency(
        MicroOp::zero_four(),
        AuthMode::Macs,
        Optimizations::all(),
        25,
    );
    let mut no_dr = Optimizations::all();
    no_dr.digest_replies = false;
    let without = scenarios::latency(MicroOp::zero_four(), AuthMode::Macs, no_dr, 25);
    println!(
        "{:<28} {:>12.0} {:>9.2}x  (0/4: all replicas send 4KB)",
        "0/4 without digest replies",
        without.mean_us,
        without.mean_us / with.mean_us
    );
    // Batching matters under load; measure throughput with 20 clients.
    let batched = scenarios::throughput(MicroOp::zero_zero(), 1, 20, 50);
    let mut cfg_unbatched = Optimizations::all();
    cfg_unbatched.batching = false;
    let unbatched = throughput_with_opts(MicroOp::zero_zero(), 20, 50, cfg_unbatched);
    println!(
        "{:<28} {:>12.0} ops/s vs {:.0} ops/s batched",
        "no batching (20 clients)", unbatched, batched.ops_per_sec
    );
}

fn throughput_with_opts(op: MicroOp, clients: u32, ops: u64, opts: Optimizations) -> f64 {
    let mut config = scenarios::micro_config(1, clients);
    config.replica.opts = opts;
    config.replica.window = 32;
    let mut cluster = bft_sim::mem_cluster(config, 64);
    cluster.set_workload(bft_sim::OpGen::fixed(op.bytes(), op.read_only, ops));
    let done = cluster.run_to_completion(bft_types::SimTime(1_200_000_000));
    assert!(done);
    cluster.metrics.throughput_ops_per_sec()
}

/// E-8.3.4: latency and throughput with more replicas.
pub fn run_e834() {
    header("E-8.3.4", "scaling with f (n = 3f+1), 0/0 (virtual)");
    println!(
        "{:>4} {:>4} {:>14} {:>16}",
        "f", "n", "latency (us)", "thruput (ops/s)"
    );
    for f in [1usize, 2, 3, 4] {
        let mut config = scenarios::micro_config(f, 1);
        config.replica.window = 32;
        let mut cluster = bft_sim::mem_cluster(config, 64);
        cluster.set_workload(bft_sim::OpGen::fixed(
            MicroOp::zero_zero().bytes(),
            false,
            30,
        ));
        assert!(cluster.run_to_completion(bft_types::SimTime(600_000_000)));
        let lat = cluster.metrics.latency.mean_us();
        let thr = scenarios::throughput(MicroOp::zero_zero(), f, 20, 40);
        println!(
            "{:>4} {:>4} {:>14.0} {:>16.0}",
            f,
            3 * f + 1,
            lat,
            thr.ops_per_sec
        );
    }
}

/// E-8.3.5: sensitivity to model parameters (analytic).
pub fn run_e835() {
    header(
        "E-8.3.5",
        "latency sensitivity to crypto and wire cost scaling (analytic, us)",
    );
    println!(
        "{:>14} {:>14} {:>14}",
        "scale", "crypto-scaled", "wire-scaled"
    );
    let base = bft_model::ModelParams::thesis(1);
    for scale in [0.5f64, 1.0, 2.0, 4.0] {
        let mut crypto = base;
        crypto.digest.fixed_us *= scale;
        crypto.digest.per_byte_us *= scale;
        crypto.mac.fixed_us *= scale;
        crypto.mac.per_byte_us *= scale;
        let mut wire = base;
        wire.wire.fixed_us *= scale;
        wire.wire.per_byte_us *= scale;
        wire.send.fixed_us *= scale;
        wire.recv.fixed_us *= scale;
        println!(
            "{:>14.1} {:>14.0} {:>14.0}",
            scale,
            crypto.read_write_latency_us(0, 0),
            wire.read_write_latency_us(0, 0)
        );
    }
}

/// E-8.4.1: checkpoint creation cost (real time, varying locality).
pub fn run_e841() {
    header(
        "E-8.4.1",
        "checkpoint creation cost vs modified pages (measured, real time)",
    );
    use bft_core::partition_tree::PartitionTree;
    use bft_types::SeqNo;
    let pages: Vec<bytes::Bytes> = (0..1024u64)
        .map(|_| bytes::Bytes::from(vec![0u8; 4096]))
        .collect();
    println!("{:>16} {:>14}", "modified pages", "us/checkpoint");
    for modified in [1usize, 16, 64, 256, 1024] {
        let mut tree = PartitionTree::new(pages.clone(), 256);
        let start = Instant::now();
        let rounds = 20u64;
        for r in 0..rounds {
            for p in 0..modified {
                tree.write_page(p as u64, bytes::Bytes::from(vec![r as u8; 4096]));
            }
            tree.checkpoint(SeqNo(r + 1));
            tree.discard_below(SeqNo(r + 1));
        }
        let us = start.elapsed().as_secs_f64() * 1e6 / rounds as f64;
        println!("{:>16} {:>14.0}", modified, us);
    }
    println!("(cost grows with modified pages, not state size — the §5.3.1 claim)");
}

/// E-8.4.2: state transfer volume/time versus lag.
pub fn run_e842() {
    header("E-8.4.2", "state transfer vs lag (virtual time)");
    println!(
        "{:>12} {:>10} {:>12} {:>14}",
        "lag batches", "pages", "bytes", "time (ms)"
    );
    for lag in [24u64, 48, 96] {
        let (pages, bytes, time) = scenarios::state_transfer_cost(lag, 2048);
        println!(
            "{:>12} {:>10} {:>12} {:>14.1}",
            lag,
            pages,
            bytes,
            time.as_millis_f64()
        );
    }
}

/// E-8.5: view-change interruption.
pub fn run_e85() {
    header("E-8.5", "view change: service interruption (virtual ms)");
    for seed in [1u64, 2, 3] {
        let gap = scenarios::view_change_interruption(seed);
        println!("seed {seed}: interruption = {:.1} ms", gap.as_millis_f64());
    }
    println!("(interruption ≈ view-change timeout + protocol latency)");
}

/// E-8.6.2: Andrew benchmark, BFS vs unreplicated baseline.
pub fn run_e862() {
    header("E-8.6.2", "Andrew benchmark: BFS vs NFS-std (virtual ms)");
    let cfg = AndrewConfig::default();
    let bfs_ro = scenarios::andrew_replicated(&cfg, true, 1);
    let bfs_rw = scenarios::andrew_replicated(&cfg, false, 1);
    let base = scenarios::andrew_baseline(&cfg);
    println!(
        "{:<16} {:>12} {:>14} {:>12} {:>10}",
        "phase", "BFS", "BFS(no ro)", "NFS-std", "BFS/std"
    );
    for i in 0..base.len() {
        println!(
            "{:<16} {:>12.1} {:>14.1} {:>12.1} {:>9.2}x",
            base[i].0,
            bfs_ro[i].1.as_millis_f64(),
            bfs_rw[i].1.as_millis_f64(),
            base[i].1.as_millis_f64(),
            bfs_ro[i].1.as_micros() as f64 / base[i].1.as_micros().max(1) as f64
        );
    }
    let t_bfs = scenarios::total(&bfs_ro).as_millis_f64();
    let t_base = scenarios::total(&base).as_millis_f64();
    println!(
        "total: BFS {:.1} ms vs NFS-std {:.1} ms → {:+.1}% (thesis band: -2%..+24%)",
        t_bfs,
        t_base,
        100.0 * (t_bfs - t_base) / t_base
    );
}

/// E-8.6.3: recovery impact on throughput.
pub fn run_e863() {
    header(
        "E-8.6.3",
        "proactive recovery: throughput vs watchdog period (virtual)",
    );
    println!(
        "{:>16} {:>12} {:>12} {:>12}",
        "watchdog (s)", "recoveries", "ops done", "ops/s"
    );
    let horizon = SimDuration::from_secs(90);
    let no_rec = scenarios::recovery_run(SimDuration::from_secs(100_000), horizon, 3);
    println!(
        "{:>16} {:>12} {:>12} {:>12.0}",
        "off", no_rec.0, no_rec.1, no_rec.2
    );
    for watchdog_s in [45u64, 30, 15] {
        let r = scenarios::recovery_run(SimDuration::from_secs(watchdog_s), horizon, 3);
        println!("{:>16} {:>12} {:>12} {:>12.0}", watchdog_s, r.0, r.1, r.2);
    }
    println!("(shorter windows of vulnerability cost modest throughput — §8.6.3)");
}

/// E-7: analytic model predictions next to simulator measurements.
pub fn run_e7() {
    header(
        "E-7",
        "Chapter 7 model vs simulator (0/0, 4/0, 0/4 latency, us)",
    );
    let m = bft_model::ModelParams::thesis(1);
    println!(
        "{:<8} {:>12} {:>12} {:>10}",
        "op", "model", "simulated", "ratio"
    );
    for (name, op) in [
        ("0/0", MicroOp::zero_zero()),
        ("4/0", MicroOp::four_zero()),
        ("0/4", MicroOp::zero_four()),
    ] {
        let predicted = m.read_write_latency_us(op.arg, op.result);
        let measured = scenarios::latency(op, AuthMode::Macs, Optimizations::all(), 40);
        println!(
            "{:<8} {:>12.0} {:>12.0} {:>10.2}",
            name,
            predicted,
            measured.mean_us,
            measured.mean_us / predicted
        );
    }
    println!("(thesis: model within ~x2 of measurements; shape identical)");
}

/// Runs every experiment.
pub fn run_all() {
    run_e821();
    run_e822();
    run_e823();
    run_e831();
    run_e831v();
    run_e832();
    run_e833();
    run_e834();
    run_e835();
    run_e841();
    run_e842();
    run_e85();
    run_e862();
    run_e863();
    run_e7();
}
