//! `pbft-client`: open/closed-loop load generator against a real
//! cluster.
//!
//! Usage:
//!   pbft-client --config cluster.conf [--shard K] [--clients N] [--first-id C]
//!               [--ops K] [--op-bytes B] [--read-every M]
//!               [--think-ms T | --rate OPS_PER_SEC]
//!               [--retransmit-ms MS] [--deadline-secs S]
//!
//! Each client worker runs one `ClientProxy` in a closed loop (default)
//! or paced open loop (`--rate`, per client), issuing the benchmark mix:
//! padded counter increments with every `--read-every`-th operation a
//! read-only `GET`. With a sharded config, `--shard K` routes every
//! client at group `k` (single-shard routing: the workload pays nothing
//! for the shards it never touches). Prints per-client lines and an
//! aggregate summary.
//!
//! With `service = bfs` in the topology, the counter mix is replaced by
//! the Andrew benchmark script (§8.6): `--clients N` logical clients on
//! one multiplexed transport pull NFS ops from a shared dependency-aware
//! scheduler, read-only ops ride the §5.1.3 fast path
//! (`--no-fast-path` disables the marking), and `--andrew-scale K`
//! multiplies the script. Prints per-phase wall clock and latency.

use bfs::{generate_script, AndrewConfig};
use bft_runtime::bfs_driver::run_andrew_mux;
use bft_runtime::client::{run_client, run_workers, ClientReport, LoadMode, Workload};
use bft_runtime::config::{ServiceKind, Topology};
use bft_types::{ClientId, ShardId};
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: pbft-client --config FILE [--shard K] [--clients N] [--first-id C] [--ops K] \
         [--op-bytes B] [--read-every M] [--think-ms T | --rate R] \
         [--retransmit-ms MS] [--deadline-secs S] [--andrew-scale K] [--no-fast-path]"
    );
    std::process::exit(2);
}

/// BFS mode: run the Andrew script against the cluster and print the
/// per-phase table. Exits the process.
fn run_andrew(
    topo: &Topology,
    ids: &[ClientId],
    scale: u32,
    fast_path: bool,
    deadline: Duration,
) -> ! {
    let cfg = AndrewConfig {
        scale,
        ..AndrewConfig::default()
    };
    let script = generate_script(&cfg);
    println!(
        "pbft-client: Andrew (scale {scale}): {} ops, {} logical clients, fast paths {}",
        script.len(),
        ids.len(),
        if fast_path { "on" } else { "off" },
    );
    let run = run_andrew_mux(ids, topo, script, fast_path, false, deadline);
    for p in &run.phases {
        let mut lat = p.latencies_us.clone();
        lat.sort_unstable();
        let pct = |q: f64| {
            if lat.is_empty() {
                0.0
            } else {
                lat[((lat.len() - 1) as f64 * q).round() as usize] as f64 / 1e3
            }
        };
        println!(
            "  {:<9} {:>5} ops in {:>8.2}ms  p50 {:.2}ms p99 {:.2}ms",
            p.phase,
            p.ops,
            p.wall.as_secs_f64() * 1e3,
            pct(0.5),
            pct(0.99),
        );
    }
    println!(
        "aggregate: {} ops in {:.2}s = {:.1} ops/s, {} retransmitted",
        run.completed,
        run.total_wall.as_secs_f64(),
        run.ops_per_sec(),
        run.retransmitted,
    );
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config_path: Option<String> = None;
    let mut shard: u32 = 0;
    let mut clients: u32 = 1;
    let mut first_id: u32 = 0;
    let mut ops: u64 = 100;
    let mut op_bytes: usize = 128;
    let mut read_every: u64 = 4;
    let mut think_ms: u64 = 0;
    let mut rate: Option<f64> = None;
    let mut retransmit_ms: Option<u64> = None;
    let mut deadline_secs: u64 = 60;
    let mut andrew_scale: u32 = 1;
    let mut fast_path = true;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut num = |dst: &mut u64| match it.next().and_then(|v| v.parse().ok()) {
            Some(v) => *dst = v,
            None => usage(),
        };
        match a.as_str() {
            "--config" => config_path = it.next().cloned(),
            "--shard" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => shard = v,
                None => usage(),
            },
            "--clients" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => clients = v,
                None => usage(),
            },
            "--first-id" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => first_id = v,
                None => usage(),
            },
            "--ops" => num(&mut ops),
            "--op-bytes" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => op_bytes = v,
                None => usage(),
            },
            "--read-every" => num(&mut read_every),
            "--think-ms" => num(&mut think_ms),
            "--rate" => rate = it.next().and_then(|v| v.parse().ok()),
            "--retransmit-ms" => retransmit_ms = it.next().and_then(|v| v.parse().ok()),
            "--deadline-secs" => num(&mut deadline_secs),
            "--andrew-scale" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) => andrew_scale = v,
                None => usage(),
            },
            "--no-fast-path" => fast_path = false,
            _ => usage(),
        }
    }
    let Some(config_path) = config_path else {
        usage()
    };
    let text = std::fs::read_to_string(&config_path).unwrap_or_else(|e| {
        eprintln!("pbft-client: cannot read {config_path}: {e}");
        std::process::exit(1);
    });
    let topo = Topology::parse(&text).unwrap_or_else(|e| {
        eprintln!("pbft-client: bad config {config_path}: {e}");
        std::process::exit(1);
    });
    if shard >= topo.num_shards() {
        eprintln!(
            "pbft-client: shard {shard} out of range (topology has {} shard(s))",
            topo.num_shards()
        );
        std::process::exit(1);
    }
    let topo = topo.project(ShardId(shard));
    let deadline = Duration::from_secs(deadline_secs);
    let ids: Vec<ClientId> = (first_id..first_id + clients).map(ClientId).collect();

    if topo.service == ServiceKind::Bfs {
        run_andrew(&topo, &ids, andrew_scale, fast_path, deadline);
    }

    let mode = match rate {
        Some(r) if r > 0.0 => LoadMode::Open {
            interval: Duration::from_secs_f64(1.0 / r),
        },
        _ => LoadMode::Closed {
            think: Duration::from_millis(think_ms),
        },
    };
    let workload = Workload {
        ops,
        op_bytes,
        read_every,
        mode,
        retransmit: retransmit_ms.map(Duration::from_millis),
    };

    println!(
        "pbft-client: {clients} client(s) x {ops} ops ({:?}), shard {shard}, {} replicas",
        workload.mode,
        topo.replicas.len()
    );
    // Collect per-worker outcomes rather than `.join().expect(..)`: one
    // panicking worker must not discard every other worker's stats.
    let outcomes = run_workers(&ids, |c| run_client(c, &topo, &workload, deadline));
    let mut reports: Vec<ClientReport> = Vec::with_capacity(outcomes.len());
    let mut dead: Vec<String> = Vec::new();
    for (c, outcome) in outcomes {
        match outcome {
            Ok(report) => reports.push(report),
            Err(why) => dead.push(format!("c{}: {why}", c.0)),
        }
    }

    let mut total_ops = 0u64;
    let mut total_retrans = 0u64;
    let mut all_lat: Vec<u64> = Vec::new();
    let mut max_wall = Duration::ZERO;
    for r in &reports {
        println!(
            "  c{}: {}/{} ops, {:.1} ops/s, mean {:.2}ms p99 {:.2}ms, {} retransmitted",
            r.client.0,
            r.completed,
            ops,
            r.ops_per_sec(),
            r.latency_mean_us() / 1e3,
            r.latency_percentile_us(0.99) as f64 / 1e3,
            r.retransmitted
        );
        total_ops += r.completed;
        total_retrans += r.retransmitted;
        all_lat.extend(&r.latencies_us);
        max_wall = max_wall.max(r.wall);
    }
    all_lat.sort_unstable();
    let pct = |p: f64| -> f64 {
        if all_lat.is_empty() {
            return 0.0;
        }
        all_lat[((all_lat.len() - 1) as f64 * p).round() as usize] as f64 / 1e3
    };
    let agg_tput = if max_wall.is_zero() {
        0.0
    } else {
        total_ops as f64 / max_wall.as_secs_f64()
    };
    println!(
        "aggregate: {total_ops} ops in {:.2}s = {agg_tput:.1} ops/s, p50 {:.2}ms p99 {:.2}ms, {total_retrans} retransmitted",
        max_wall.as_secs_f64(),
        pct(0.5),
        pct(0.99)
    );
    if !dead.is_empty() {
        // Partial stats above are still valid; the run as a whole is not.
        for d in &dead {
            eprintln!("pbft-client: ERROR: client worker died: {d}");
        }
        std::process::exit(1);
    }
    if total_ops < clients as u64 * ops {
        eprintln!("pbft-client: WARNING: workload incomplete before the deadline");
        std::process::exit(1);
    }
}
