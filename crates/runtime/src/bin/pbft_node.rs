//! `pbft-node`: one PBFT replica over real TCP.
//!
//! Usage:
//!   pbft-node --config cluster.conf --id 0 [--shard K] [--status-every SECS]
//!             [--journal-file PATH]
//!   pbft-node --example-config [F]        # print a starter config
//!
//! The replica listens on its topology address, dials its peers (with
//! reconnect backoff), and serves the topology's `service` (the counter
//! benchmark service by default, BFS with `service = bfs`). With a sharded
//! config (`shard.<k>.replica.<n>` sections) `--shard K` selects which
//! group this replica belongs to; `--id` is the replica index within
//! that group. `--status-every` prints a one-line state summary
//! periodically; `--journal-file` additionally dumps the committed
//! journal to PATH (atomic rename) on each status tick, so an external
//! harness can compare journals across replicas it can't poke in
//! process (the kill9 recovery test).

use bft_runtime::config::Topology;
use bft_runtime::node::spawn_service_replica;
use bft_types::{ReplicaId, ShardId};
use std::net::TcpListener;
use std::time::Duration;

fn usage() -> ! {
    eprintln!(
        "usage: pbft-node --config FILE --id N [--shard K] [--status-every SECS] [--journal-file PATH]\n       pbft-node --example-config [F]"
    );
    std::process::exit(2);
}

/// Dumps the snapshot's committed journal to `path` atomically
/// (tmp + rename), one header line then one `seq digest-hex` line per
/// committed entry. External oracles read these files while the node
/// runs, so a partially written file must never be visible.
fn dump_journal(path: &str, s: &bft_runtime::node::Snapshot) {
    let mut out = String::new();
    out.push_str(&format!(
        "view={} active={} frontier={} last_exec={} digest={}\n",
        s.view,
        s.view_active,
        s.committed_frontier.0,
        s.last_exec.0,
        hex(&s.state_digest)
    ));
    for (seq, digest) in s.committed_journal() {
        out.push_str(&format!("{seq} {}\n", hex(&digest)));
    }
    let tmp = format!("{path}.tmp");
    if std::fs::write(&tmp, out).is_ok() {
        let _ = std::fs::rename(&tmp, path);
    }
}

fn hex(d: &bft_crypto::Digest) -> String {
    d.as_bytes().iter().map(|b| format!("{b:02x}")).collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut config_path: Option<String> = None;
    let mut id: Option<u32> = None;
    let mut shard: u32 = 0;
    let mut status_every: Option<u64> = None;
    let mut journal_file: Option<String> = None;
    let mut example: Option<usize> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--config" => config_path = it.next().cloned(),
            "--id" => id = it.next().and_then(|v| v.parse().ok()),
            "--shard" => {
                shard = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage())
            }
            "--status-every" => status_every = it.next().and_then(|v| v.parse().ok()),
            "--journal-file" => journal_file = it.next().cloned(),
            "--example-config" => {
                example = Some(it.next().and_then(|v| v.parse().ok()).unwrap_or(1))
            }
            _ => usage(),
        }
    }
    if let Some(f) = example {
        print!("{}", Topology::localhost(f, 8, 5100).to_config_string());
        return;
    }
    let (Some(config_path), Some(id)) = (config_path, id) else {
        usage()
    };
    let text = std::fs::read_to_string(&config_path).unwrap_or_else(|e| {
        eprintln!("pbft-node: cannot read {config_path}: {e}");
        std::process::exit(1);
    });
    let topo = Topology::parse(&text).unwrap_or_else(|e| {
        eprintln!("pbft-node: bad config {config_path}: {e}");
        std::process::exit(1);
    });
    if shard >= topo.num_shards() {
        eprintln!(
            "pbft-node: shard {shard} out of range (topology has {} shard(s))",
            topo.num_shards()
        );
        std::process::exit(1);
    }
    let topo = topo.project(ShardId(shard));
    let Some(addr) = topo.replicas.get(id as usize).copied() else {
        eprintln!(
            "pbft-node: id {id} out of range (topology has {} replicas)",
            topo.replicas.len()
        );
        std::process::exit(1);
    };
    let listener = TcpListener::bind(addr).unwrap_or_else(|e| {
        eprintln!("pbft-node: cannot listen on {addr}: {e}");
        std::process::exit(1);
    });
    println!(
        "pbft-node: shard {shard} replica {id} of n={} (f={}) serving `{}` listening on {addr}",
        topo.replicas.len(),
        topo.f,
        topo.service
    );
    let node = spawn_service_replica(ReplicaId(id), topo, listener);
    // A journal file implies polling even without --status-every.
    let tick_secs = match (status_every, &journal_file) {
        (Some(secs), _) if secs > 0 => Some(secs),
        (None, Some(_)) => Some(1),
        _ => None,
    };
    match tick_secs {
        Some(secs) => loop {
            std::thread::sleep(Duration::from_secs(secs));
            match node.snapshot() {
                Some(s) => {
                    if status_every.is_some() {
                        println!(
                            "view={} active={} last_exec={} executed={} ckpts={} vc={} sent={} recv={} dropped={}",
                            s.view,
                            s.view_active,
                            s.last_exec.0,
                            s.stats.requests_executed,
                            s.stats.checkpoints_taken,
                            s.stats.view_changes_started,
                            s.transport.frames_sent,
                            s.transport.frames_received,
                            s.transport.frames_dropped,
                        );
                    }
                    if let Some(path) = &journal_file {
                        dump_journal(path, &s);
                    }
                }
                None => break,
            }
        },
        None => node.join(),
    }
}
