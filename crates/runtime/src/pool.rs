//! The MAC worker pool: the runtime's multi-core data plane.
//!
//! The paper's normal-case cost is dominated by MAC computation (§8.1),
//! and MACs are embarrassingly parallel per message — but the protocol
//! state machine is single-threaded by design (messages share `Rc`
//! bodies and are `!Send`). The pool splits the difference by shipping
//! *bytes*, never records:
//!
//! * **Inbound:** a forwarder thread stamps every checksum-verified
//!   payload from the transport with a monotonically increasing token
//!   and round-robins it to a worker. The worker decodes its own copy
//!   of the message (worker-local; it never crosses a thread), runs
//!   [`bft_core::preverify`] against its own [`AuthState`] — built from
//!   the same deterministic [`ClusterKeys`], so key tables agree — and
//!   returns `(token, payload, verdict)`. [`MacPool::recv_inbound`]
//!   reorders completions by token, so the protocol thread consumes
//!   inputs in exact arrival order: the pool changes *where* MACs are
//!   checked, never the delivery order the replica observes.
//! * **Outbound:** messages authored with a deferred authenticator
//!   (nonce-only placeholder, see `Message::deferred_auth_parts`) are
//!   handed to a worker as `(variant, content bytes, nonce)`. The
//!   worker computes the per-receiver tags with prebuilt
//!   [`MacContext`]s, rebuilds the exact wire payload (every message
//!   encodes `auth` last), frames it, and passes it to a dispatcher
//!   thread that releases frames to the transport in submission order.
//!   Ready frames (replies, view-change traffic) flow through the same
//!   dispatcher with their own tokens, so deferral never reorders a
//!   node's output stream.
//!
//! The pool assumes static session keys: the runtime refuses to enable
//! it when proactive recovery (key refreshment, §4.3.1) is configured.

use crate::transport::{FrameBuf, Transport};
use bft_core::authn::AuthState;
use bft_core::{preverify, AuthVerdict, ClusterKeys, ReplicaConfig};
use bft_crypto::{Authenticator, MacContext};
use bft_types::framing::frame_payload;
use bft_types::{Auth, Message, NodeId, ReplicaId, Wire};
use std::collections::BTreeMap;
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

enum Job {
    /// Verify one inbound payload's authentication.
    Verify { token: u64, payload: Vec<u8> },
    /// Compute a deferred outbound authenticator and assemble the frame.
    Author {
        token: u64,
        variant: u8,
        content: Vec<u8>,
        nonce: u64,
        dests: Vec<NodeId>,
    },
}

/// An outbound frame ready for the wire, tagged with its send token.
struct Outgoing {
    token: u64,
    frame: FrameBuf,
    dests: Vec<NodeId>,
}

/// Handle owned by the protocol thread. See the module docs.
pub struct MacPool {
    job_txs: Vec<Sender<Job>>,
    next_worker: usize,
    out_tx: Sender<Outgoing>,
    verdict_rx: Receiver<(u64, Vec<u8>, AuthVerdict)>,
    /// Completions that arrived ahead of a still-outstanding token.
    reorder: BTreeMap<u64, (Vec<u8>, AuthVerdict)>,
    next_in: u64,
    next_out: u64,
    joins: Vec<JoinHandle<()>>,
}

impl MacPool {
    /// Starts `workers` workers plus the forwarder and dispatcher.
    /// `raw_rx` is the transport's inbound payload channel; authored and
    /// ready frames leave through `transport`.
    pub fn start(
        workers: usize,
        me: ReplicaId,
        config: &ReplicaConfig,
        keys: &ClusterKeys,
        raw_rx: Receiver<Vec<u8>>,
        transport: Arc<Transport>,
    ) -> MacPool {
        assert!(workers > 0, "MacPool needs at least one worker");
        let (verdict_tx, verdict_rx) = mpsc::channel();
        let (out_tx, out_rx) = mpsc::channel::<Outgoing>();
        let mut job_txs = Vec::with_capacity(workers);
        let mut joins = Vec::new();
        for w in 0..workers {
            let (job_tx, job_rx) = mpsc::channel::<Job>();
            job_txs.push(job_tx);
            let verdict_tx = verdict_tx.clone();
            let out_tx = out_tx.clone();
            let keys = keys.clone();
            let config = config.clone();
            joins.push(
                std::thread::Builder::new()
                    .name(format!("pbft-mac-{}-{w}", me.0))
                    .spawn(move || worker_loop(me, &config, &keys, job_rx, verdict_tx, out_tx))
                    .expect("spawn mac worker"),
            );
        }
        let forward_txs = job_txs.clone();
        joins.push(
            std::thread::Builder::new()
                .name(format!("pbft-fwd-{}", me.0))
                .spawn(move || forwarder_loop(raw_rx, forward_txs))
                .expect("spawn forwarder"),
        );
        joins.push(
            std::thread::Builder::new()
                .name(format!("pbft-dispatch-{}", me.0))
                .spawn(move || dispatcher_loop(out_rx, transport))
                .expect("spawn dispatcher"),
        );
        MacPool {
            job_txs,
            next_worker: 0,
            out_tx,
            verdict_rx,
            reorder: BTreeMap::new(),
            next_in: 0,
            next_out: 0,
            joins,
        }
    }

    /// Sends a fully authenticated frame; it takes its place in the
    /// output order behind any deferred frames submitted before it.
    pub fn send_ready(&mut self, frame: FrameBuf, dests: Vec<NodeId>) {
        let token = self.next_out;
        self.next_out += 1;
        let _ = self.out_tx.send(Outgoing {
            token,
            frame,
            dests,
        });
    }

    /// Submits a deferred-authenticator message for worker-side MAC
    /// computation and frame assembly.
    pub fn send_deferred(&mut self, variant: u8, content: Vec<u8>, nonce: u64, dests: Vec<NodeId>) {
        let token = self.next_out;
        self.next_out += 1;
        let job = Job::Author {
            token,
            variant,
            content,
            nonce,
            dests,
        };
        let w = self.next_worker;
        self.next_worker = (self.next_worker + 1) % self.job_txs.len();
        let _ = self.job_txs[w].send(job);
    }

    /// Waits up to `timeout` for verified inbound payloads and returns
    /// them in arrival order (the forwarder's token order). An empty
    /// result never occurs: timeouts surface as `Err(Timeout)`.
    pub fn recv_inbound(
        &mut self,
        timeout: Duration,
    ) -> Result<Vec<(Vec<u8>, AuthVerdict)>, RecvTimeoutError> {
        let ready = self.pop_ready();
        if !ready.is_empty() {
            return Ok(ready);
        }
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline
                .checked_duration_since(Instant::now())
                .ok_or(RecvTimeoutError::Timeout)?;
            let (token, payload, verdict) = self.verdict_rx.recv_timeout(remaining)?;
            self.reorder.insert(token, (payload, verdict));
            while let Ok((t, p, v)) = self.verdict_rx.try_recv() {
                self.reorder.insert(t, (p, v));
            }
            let ready = self.pop_ready();
            if !ready.is_empty() {
                return Ok(ready);
            }
            // The head-of-line token is still in flight on a worker;
            // keep waiting for it.
        }
    }

    fn pop_ready(&mut self) -> Vec<(Vec<u8>, AuthVerdict)> {
        let mut ready = Vec::new();
        while let Some(item) = self.reorder.remove(&self.next_in) {
            self.next_in += 1;
            ready.push(item);
        }
        ready
    }

    /// Drains and joins every pool thread. Call *after* the transport
    /// has shut down (its readers feed the forwarder; joining the
    /// forwarder first would deadlock on a still-open channel).
    pub fn shutdown(self) {
        let MacPool {
            job_txs,
            out_tx,
            verdict_rx,
            joins,
            ..
        } = self;
        // Closing the job channels stops the workers once the forwarder
        // (whose inbound channel died with the transport) exits too; the
        // dispatcher follows when the last worker drops its out sender.
        drop(job_txs);
        drop(out_tx);
        drop(verdict_rx);
        for join in joins {
            let _ = join.join();
        }
    }
}

/// Stamps inbound payloads with tokens and round-robins them across
/// workers. Exits when the transport side of the channel closes.
fn forwarder_loop(raw_rx: Receiver<Vec<u8>>, job_txs: Vec<Sender<Job>>) {
    for (token, payload) in raw_rx.iter().enumerate() {
        let token = token as u64;
        let w = (token % job_txs.len() as u64) as usize;
        if job_txs[w].send(Job::Verify { token, payload }).is_err() {
            return;
        }
    }
}

/// One pool worker: owns an independent [`AuthState`] (same
/// deterministic key material as the replica) for inbound verification
/// and per-receiver [`MacContext`]s for outbound authoring.
fn worker_loop(
    me: ReplicaId,
    config: &ReplicaConfig,
    keys: &ClusterKeys,
    jobs: Receiver<Job>,
    verdict_tx: Sender<(u64, Vec<u8>, AuthVerdict)>,
    out_tx: Sender<Outgoing>,
) {
    let auth = AuthState::new(
        config.auth,
        NodeId::Replica(me),
        config.group,
        config.num_clients,
        keys,
    );
    // Authenticator slot j is MACed under the out key for replica j —
    // exactly the key list `AuthState::authenticate_multicast` uses.
    let macs: Vec<MacContext> = (0..config.group.n)
        .map(|j| MacContext::new(&auth.keys.out_key(j)))
        .collect();
    for job in jobs.iter() {
        match job {
            Job::Verify { token, payload } => {
                let verdict = {
                    let mut slice = payload.as_slice();
                    match Message::decode(&mut slice) {
                        // A worker-side decode is this thread's own copy;
                        // the `!Send` record never leaves the worker.
                        Ok(msg) if slice.is_empty() => preverify(&auth, &msg),
                        _ => AuthVerdict::Unverified,
                    }
                };
                // Every Verify job must complete exactly once or the
                // protocol thread's reorder buffer stalls.
                if verdict_tx.send((token, payload, verdict)).is_err() {
                    return;
                }
            }
            Job::Author {
                token,
                variant,
                content,
                nonce,
                dests,
            } => {
                let nb = nonce.to_le_bytes();
                let tags = macs.iter().map(|c| c.mac_parts(&[&nb, &content])).collect();
                // Rebuild the exact wire payload: variant tag, then the
                // content bytes (every field but auth), then the real
                // authenticator where the placeholder would have gone.
                let auth_field = Auth::Authenticator(Authenticator { nonce, tags });
                let mut payload = Vec::with_capacity(1 + content.len() + 16 + config.group.n * 9);
                payload.push(variant);
                payload.extend_from_slice(&content);
                auth_field.encode(&mut payload);
                let frame = Arc::new(frame_payload(&payload));
                if out_tx
                    .send(Outgoing {
                        token,
                        frame,
                        dests,
                    })
                    .is_err()
                {
                    return;
                }
            }
        }
    }
}

/// Releases outbound frames to the transport in token order, so the
/// node's output stream is identical to what a single-threaded sender
/// would have produced.
fn dispatcher_loop(out_rx: Receiver<Outgoing>, transport: Arc<Transport>) {
    let mut next = 0u64;
    let mut pending: BTreeMap<u64, (FrameBuf, Vec<NodeId>)> = BTreeMap::new();
    for out in out_rx.iter() {
        pending.insert(out.token, (out.frame, out.dests));
        while let Some((frame, dests)) = pending.remove(&next) {
            next += 1;
            for dest in dests {
                transport.send(dest, Arc::clone(&frame));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bft_core::authn::client_node;
    use bft_core::config::AuthMode;
    use bft_types::framing::frame_bytes;
    use bft_types::{AuthContent, Commit, SeqNo, View};

    /// A worker-assembled frame must be byte-identical to the frame of
    /// the same message authenticated inline with the same nonce —
    /// receivers cannot tell deferred and inline authentication apart.
    #[test]
    fn authored_frame_matches_inline_encoding() {
        let config = ReplicaConfig::small(1);
        let keys = ClusterKeys::generate(config.group, config.num_clients, 128, 42);
        let auth = AuthState::new(
            AuthMode::Macs,
            NodeId::Replica(ReplicaId(1)),
            config.group,
            config.num_clients,
            &keys,
        );
        let mut inline = Commit {
            view: View(3),
            seq: SeqNo(17),
            digest: bft_crypto::digest(b"batch"),
            replica: ReplicaId(1),
            auth: Auth::None,
        };
        let nonce = 0xDEAD_BEEF;
        let real = inline.for_content(|c| {
            Authenticator::generate(
                &(0..config.group.n)
                    .map(|j| auth.keys.out_key(j))
                    .collect::<Vec<_>>(),
                nonce,
                c,
            )
        });
        inline.auth = Auth::Authenticator(real);
        let expected = frame_bytes(&Message::Commit(inline.clone()));

        // The worker path: placeholder message → (variant, content,
        // nonce) → MacContext tags → reassembled payload.
        let mut deferred = inline.clone();
        deferred.auth = Auth::Authenticator(Authenticator {
            nonce,
            tags: Vec::new(),
        });
        let (variant, content, got_nonce) = Message::Commit(deferred)
            .deferred_auth_parts()
            .expect("placeholder is deferred");
        assert_eq!(got_nonce, nonce);
        let macs: Vec<MacContext> = (0..config.group.n)
            .map(|j| MacContext::new(&auth.keys.out_key(j)))
            .collect();
        let nb = got_nonce.to_le_bytes();
        let tags = macs.iter().map(|c| c.mac_parts(&[&nb, &content])).collect();
        let mut payload = Vec::new();
        payload.push(variant);
        payload.extend_from_slice(&content);
        Auth::Authenticator(Authenticator {
            nonce: got_nonce,
            tags,
        })
        .encode(&mut payload);
        assert_eq!(frame_payload(&payload), expected);
    }

    /// Inline-authenticated messages (and anything already carrying real
    /// tags) are not deferred.
    #[test]
    fn complete_auth_is_not_deferred() {
        let config = ReplicaConfig::small(1);
        let keys = ClusterKeys::generate(config.group, config.num_clients, 128, 42);
        let mut auth = AuthState::new(
            AuthMode::Macs,
            NodeId::Replica(ReplicaId(0)),
            config.group,
            config.num_clients,
            &keys,
        );
        let mut c = Commit {
            view: View(0),
            seq: SeqNo(1),
            digest: bft_crypto::digest(b"x"),
            replica: ReplicaId(0),
            auth: Auth::None,
        };
        assert!(Message::Commit(c.clone()).deferred_auth_parts().is_none());
        c.auth = auth.authenticate_multicast_msg(&c);
        assert!(Message::Commit(c).deferred_auth_parts().is_none());
    }

    /// End-to-end pool sanity: deferred frames reach the transport in
    /// submission order, interleaved ready frames included, and inbound
    /// verification verdicts come back in token order.
    #[test]
    fn pool_orders_output_and_verifies_input() {
        use std::net::TcpListener;
        let config = ReplicaConfig::small(1);
        let keys = ClusterKeys::generate(config.group, config.num_clients, 128, 42);
        // A listener-backed transport on the receiving end captures what
        // the pool's dispatcher emits.
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = l.local_addr().unwrap();
        let receiver = NodeId::Replica(ReplicaId(2));
        let (recv_tx, recv_rx) = mpsc::channel();
        let t_recv = Transport::start(receiver, Some(l), vec![], recv_tx);
        let (send_tx, _send_rx) = mpsc::channel();
        let t_send = Arc::new(Transport::start(
            NodeId::Replica(ReplicaId(1)),
            None,
            vec![(receiver, addr)],
            send_tx,
        ));

        let (raw_tx, raw_rx) = mpsc::channel();
        let mut pool = MacPool::start(2, ReplicaId(1), &config, &keys, raw_rx, Arc::clone(&t_send));

        // Outbound: two deferred commits with a ready frame between
        // them. All three must arrive, in submission order.
        for seq in [1u64, 2] {
            let c = Commit {
                view: View(0),
                seq: SeqNo(seq),
                digest: bft_crypto::digest(b"x"),
                replica: ReplicaId(1),
                auth: Auth::Authenticator(Authenticator {
                    nonce: seq,
                    tags: Vec::new(),
                }),
            };
            let (variant, content, nonce) =
                Message::Commit(c).deferred_auth_parts().expect("deferred");
            pool.send_deferred(variant, content, nonce, vec![receiver]);
            if seq == 1 {
                pool.send_ready(
                    Arc::new(frame_bytes(&Message::Commit(Commit {
                        view: View(0),
                        seq: SeqNo(100),
                        digest: bft_crypto::digest(b"ready"),
                        replica: ReplicaId(1),
                        auth: Auth::None,
                    }))),
                    vec![receiver],
                );
            }
        }
        let mut seqs = Vec::new();
        for _ in 0..3 {
            let payload = recv_rx
                .recv_timeout(Duration::from_secs(5))
                .expect("dispatched frame");
            let mut slice = payload.as_slice();
            let Ok(Message::Commit(c)) = Message::decode(&mut slice) else {
                panic!("expected commit");
            };
            seqs.push(c.seq.0);
            if c.seq.0 <= 2 {
                // Deferred frames carry a full, verifying authenticator.
                let verifier = AuthState::new(
                    AuthMode::Macs,
                    receiver,
                    config.group,
                    config.num_clients,
                    &keys,
                );
                assert!(verifier.verify_msg(NodeId::Replica(ReplicaId(1)), &c));
            }
        }
        assert_eq!(seqs, vec![1, 100, 2], "submission order preserved");

        // Inbound: a valid request from a client verifies; a garbage
        // payload comes back Unverified; order is token order.
        let mut client_auth = AuthState::new(
            AuthMode::Macs,
            client_node(1),
            config.group,
            config.num_clients,
            &keys,
        );
        let mut req = bft_types::Request {
            requester: bft_types::Requester::Client(bft_types::ClientId(1)),
            timestamp: bft_types::Timestamp(1),
            operation: bytes::Bytes::from_static(b"op"),
            read_only: false,
            replier: None,
            auth: Auth::None,
            digest_memo: bft_types::DigestMemo::new(),
        };
        req.auth = client_auth.authenticate_multicast_msg(&req);
        let mut good = Vec::new();
        Message::Request(req).encode(&mut good);
        raw_tx.send(good.clone()).unwrap();
        raw_tx.send(vec![0xFF, 0xFF]).unwrap();
        let mut got = Vec::new();
        while got.len() < 2 {
            got.extend(pool.recv_inbound(Duration::from_secs(5)).expect("verdicts"));
        }
        assert_eq!(got[0].0, good);
        assert_eq!(got[0].1, AuthVerdict::Verified);
        assert_eq!(got[1].1, AuthVerdict::Unverified);

        t_send.shutdown();
        drop(raw_tx);
        pool.shutdown();
        t_recv.shutdown();
    }
}
