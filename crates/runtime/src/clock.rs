//! Monotonic-clock timers over the simulator's wheel.
//!
//! The simulator schedules timers on a [`bft_net::EventWheel`] keyed by
//! virtual microseconds. The wheel itself never cared what a tick means
//! (see [`bft_net::EventWheel::push_tick`]); here the same structure is
//! keyed by microseconds of `Instant` time since the process started, so
//! the runtime gets the wheel's O(1) scheduling and generation-stamped
//! lazy cancellation without a second timer implementation.

use bft_net::{EventKey, EventWheel};
use bft_types::SimDuration;
use std::hash::Hash;
use std::time::{Duration, Instant};

/// Keyed single-shot timers on the real clock: setting a key re-arms it,
/// exactly like the simulator's `(node, TimerId)` generation map.
pub struct RtTimers<T: Copy + Eq + Hash> {
    origin: Instant,
    wheel: EventWheel<T>,
    keys: bft_fxhash::FastMap<T, EventKey>,
}

impl<T: Copy + Eq + Hash> Default for RtTimers<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Copy + Eq + Hash> RtTimers<T> {
    /// Creates an empty timer set; tick zero is "now".
    pub fn new() -> Self {
        RtTimers {
            origin: Instant::now(),
            wheel: EventWheel::new(),
            keys: bft_fxhash::FastMap::default(),
        }
    }

    /// Microseconds of monotonic time since construction.
    pub fn now_us(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }

    /// Arms (or re-arms) timer `id` to fire `after` from now. Protocol
    /// timeouts arrive as [`SimDuration`] virtual microseconds; the
    /// runtime reads them one-to-one as real microseconds.
    pub fn set(&mut self, id: T, after: SimDuration) {
        if let Some(key) = self.keys.remove(&id) {
            self.wheel.cancel(key);
        }
        // Clamp to the wheel's floor: a clock read racing a just-popped
        // tick must not schedule into the past.
        let at = (self.now_us() + after.as_micros()).max(self.wheel.floor_tick());
        let key = self.wheel.push_tick(at, id);
        self.keys.insert(id, key);
    }

    /// Disarms timer `id` (no-op when not armed).
    pub fn cancel(&mut self, id: T) {
        if let Some(key) = self.keys.remove(&id) {
            self.wheel.cancel(key);
        }
    }

    /// Time until the next armed timer is due (zero when overdue), or
    /// `None` when nothing is armed.
    pub fn until_next(&mut self) -> Option<Duration> {
        let tick = self.wheel.next_tick()?;
        Some(Duration::from_micros(tick.saturating_sub(self.now_us())))
    }

    /// Pops one timer that is due now, if any.
    pub fn pop_due(&mut self) -> Option<T> {
        let now = self.now_us();
        match self.wheel.next_tick() {
            Some(tick) if tick <= now => {
                let (_, id) = self.wheel.pop_tick().expect("peeked");
                self.keys.remove(&id);
                Some(id)
            }
            _ => None,
        }
    }

    /// Number of armed timers.
    pub fn armed(&self) -> usize {
        self.keys.len()
    }

    /// Disarms and returns every armed timer, due or not. The chaos
    /// runner's retransmission storms force a client's armed timers to
    /// fire at once, the live analogue of the simulator's
    /// `ClientRetransmitNow` fault.
    pub fn drain_armed(&mut self) -> Vec<T> {
        let ids: Vec<T> = self.keys.keys().copied().collect();
        for id in &ids {
            if let Some(key) = self.keys.remove(id) {
                self.wheel.cancel(key);
            }
        }
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_fires_after_delay() {
        let mut t = RtTimers::new();
        t.set(1u32, SimDuration::from_micros(500));
        assert_eq!(t.armed(), 1);
        assert!(t.pop_due().is_none(), "not due yet");
        std::thread::sleep(Duration::from_millis(2));
        assert_eq!(t.pop_due(), Some(1));
        assert_eq!(t.armed(), 0);
        assert!(t.pop_due().is_none());
    }

    #[test]
    fn rearm_replaces_and_cancel_disarms() {
        let mut t = RtTimers::new();
        t.set(7u32, SimDuration::from_micros(100));
        t.set(7u32, SimDuration::from_secs(3600)); // Re-arm far out.
        std::thread::sleep(Duration::from_millis(2));
        assert!(t.pop_due().is_none(), "old deadline was replaced");
        t.set(8u32, SimDuration::from_micros(1));
        t.cancel(8u32);
        std::thread::sleep(Duration::from_millis(1));
        assert!(t.pop_due().is_none(), "canceled timer never fires");
        assert_eq!(t.armed(), 1);
    }

    #[test]
    fn until_next_tracks_earliest() {
        let mut t = RtTimers::new();
        assert!(t.until_next().is_none());
        t.set('a', SimDuration::from_secs(10));
        t.set('b', SimDuration::from_millis(1));
        let wait = t.until_next().expect("armed");
        assert!(wait <= Duration::from_millis(1));
    }

    #[test]
    fn drain_armed_fires_everything_once() {
        let mut t = RtTimers::new();
        t.set('a', SimDuration::from_secs(3600));
        t.set('b', SimDuration::from_secs(7200));
        let mut drained = t.drain_armed();
        drained.sort_unstable();
        assert_eq!(drained, vec!['a', 'b']);
        assert_eq!(t.armed(), 0);
        std::thread::sleep(Duration::from_millis(1));
        assert!(t.pop_due().is_none(), "drained timers are disarmed");
    }

    #[test]
    fn zero_delay_is_due_immediately() {
        let mut t = RtTimers::new();
        t.set(0u8, SimDuration::ZERO);
        std::thread::sleep(Duration::from_micros(10));
        assert_eq!(t.pop_due(), Some(0));
    }
}
