//! The replica event loop: one protocol thread owning a
//! [`bft_core::Replica`], driven by transport deliveries, real-clock
//! timers, and control requests.
//!
//! The loop is the simulator's step loop transplanted onto a real
//! harness through [`ReplicaDriver`]: pop an input (a decoded message or
//! a due timer), call [`ReplicaDriver::step`], interpret the actions
//! (sends become encoded frames on the transport's queues, timer actions
//! re-arm the [`RtTimers`] wheel). The replica itself is constructed
//! *inside* the thread — protocol state shares `Rc` bodies and never
//! crosses a thread boundary.

use crate::clock::RtTimers;
use crate::config::Topology;
use crate::inject::FaultPlane;
use crate::pool::MacPool;
use crate::transport::{FrameBuf, StatsSnapshot, Transport};
use bft_core::{Action, Input, Replica, ReplicaDriver, ReplicaStats, Target, TimerId};
use bft_crypto::Digest;
use bft_statemachine::Service;
use bft_types::framing::frame_bytes;
use bft_types::{Message, NodeId, ReplicaId, Requester, SeqNo, Wire};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::time::Duration;

/// Idle poll interval: the loop wakes at least this often to check
/// control messages and the shutdown flag.
const IDLE_POLL: Duration = Duration::from_millis(25);

/// Max deliveries drained per loop iteration before timers get a turn.
const DRAIN_BATCH: usize = 128;

/// A point-in-time copy of the replica state harness oracles compare.
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// Replica id.
    pub id: ReplicaId,
    /// Current view number.
    pub view: u64,
    /// Whether the current view is active.
    pub view_active: bool,
    /// Last executed sequence number.
    pub last_exec: SeqNo,
    /// Highest sequence number with everything below committed.
    pub committed_frontier: SeqNo,
    /// Root digest of the replicated state.
    pub state_digest: Digest,
    /// The raw execution journal, re-executions after rollbacks
    /// included. Compare across replicas through
    /// [`Snapshot::committed_journal`], not directly: a replica that
    /// lived through a view change legitimately carries extra
    /// re-execution entries.
    pub journal: Vec<(SeqNo, Digest)>,
    /// Protocol counters.
    pub stats: ReplicaStats,
    /// Transport counters.
    pub transport: StatsSnapshot,
    /// Why the next sequence number is not executing (stall forensics
    /// for convergence-timeout diagnostics).
    pub exec_blocker: String,
}

impl Snapshot {
    /// The committed prefix of the journal, normalized exactly like the
    /// simulator's safety oracle (`bft_sim::chaos::committed_journal`):
    /// the final digest per sequence number at or below the committed
    /// frontier. This is the object to compare across replicas.
    pub fn committed_journal(&self) -> std::collections::BTreeMap<u64, Digest> {
        let mut map = std::collections::BTreeMap::new();
        for &(seq, digest) in &self.journal {
            if seq <= self.committed_frontier {
                map.insert(seq.0, digest);
            }
        }
        map
    }
}

enum Ctl {
    Snapshot(Sender<Snapshot>),
    Shutdown,
}

/// Handle to a spawned replica node.
pub struct NodeHandle {
    /// Replica id.
    pub id: ReplicaId,
    /// The address the node listens on.
    pub addr: SocketAddr,
    ctl: Sender<Ctl>,
    alive: Arc<AtomicBool>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl NodeHandle {
    /// Requests a state snapshot from the node thread. `None` when the
    /// node is dead.
    pub fn snapshot(&self) -> Option<Snapshot> {
        let (tx, rx) = mpsc::channel();
        self.ctl.send(Ctl::Snapshot(tx)).ok()?;
        rx.recv_timeout(Duration::from_secs(5)).ok()
    }

    /// Kills the node abruptly (fail-stop): sockets close, the protocol
    /// thread exits without any farewell messages. Idempotent.
    pub fn kill(&mut self) {
        self.alive.store(false, Ordering::Relaxed);
        let _ = self.ctl.send(Ctl::Shutdown);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }

    /// True while the node thread is running.
    pub fn is_alive(&self) -> bool {
        self.join.is_some() && self.alive.load(Ordering::Relaxed)
    }

    /// Blocks until the node thread exits (a server main-loop `join`).
    pub fn join(mut self) {
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for NodeHandle {
    fn drop(&mut self) {
        self.kill();
    }
}

/// Spawns replica `id` of `topo` on `listener`, building its service
/// with `make_service` inside the node thread.
pub fn spawn_replica<S, F>(
    id: ReplicaId,
    topo: Topology,
    listener: TcpListener,
    make_service: F,
) -> NodeHandle
where
    S: Service,
    F: FnOnce(&Topology) -> S + Send + 'static,
{
    spawn_replica_faulted(id, topo, listener, make_service, None)
}

/// [`spawn_replica`] with an optional [`FaultPlane`] wired into the
/// node's transport, for chaos campaigns against live clusters.
pub fn spawn_replica_faulted<S, F>(
    id: ReplicaId,
    topo: Topology,
    listener: TcpListener,
    make_service: F,
    faults: Option<Arc<FaultPlane>>,
) -> NodeHandle
where
    S: Service,
    F: FnOnce(&Topology) -> S + Send + 'static,
{
    let addr = listener.local_addr().expect("listener addr");
    let alive = Arc::new(AtomicBool::new(true));
    let alive2 = Arc::clone(&alive);
    let (ctl_tx, ctl_rx) = mpsc::channel::<Ctl>();
    let join = std::thread::Builder::new()
        .name(format!("pbft-node-{}", id.0))
        .spawn(move || {
            let keys = topo.keys();
            let config = topo.replica_config();
            let service = make_service(&topo);
            let mut replica = Replica::new(id, config.clone(), service, &keys, topo.key_seed);
            let (in_tx, in_rx) = mpsc::channel::<Vec<u8>>();
            let peers: Vec<(NodeId, SocketAddr)> = topo
                .replicas
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != id.0 as usize)
                .map(|(i, addr)| (NodeId::Replica(ReplicaId(i as u32)), *addr))
                .collect();
            let transport = Transport::start_faulted(
                vec![NodeId::Replica(id)],
                Some(listener),
                peers,
                in_tx,
                faults,
            );
            let mut timers = RtTimers::<TimerId>::new();

            // Storage selection happens before the event loop forks:
            // `wal` nodes recover from disk and persist from the first
            // input; `mem` nodes attach nothing, so the hot path pays
            // zero storage cost (the pre-storage behavior).
            let boot = match topo.storage {
                crate::config::StorageKind::Mem => replica.boot(),
                crate::config::StorageKind::Wal => {
                    let dir = std::path::Path::new(
                        topo.data_dir.as_deref().expect("wal requires data_dir"),
                    )
                    .join(format!("replica-{}", id.0));
                    let mut storage = bft_storage::WalStorage::open(&dir).unwrap_or_else(|e| {
                        panic!("replica {}: open WAL at {}: {e:?}", id.0, dir.display())
                    });
                    let boot = replica.recover(&mut storage);
                    replica.attach_storage(Box::new(storage));
                    boot
                }
            };

            if topo.workers > 0 {
                run_pooled(
                    id, &topo, &config, &keys, replica, boot, transport, in_rx, timers, ctl_rx,
                    alive2,
                );
                return;
            }

            let me = id;
            apply_actions(me, boot, &transport, &mut timers, topo.replicas.len());

            loop {
                // Control requests first (snapshot, shutdown).
                let mut stop = false;
                while let Ok(ctl) = ctl_rx.try_recv() {
                    match ctl {
                        Ctl::Snapshot(reply) => {
                            let _ = reply.send(take_snapshot(&replica, me, transport.stats()));
                        }
                        Ctl::Shutdown => stop = true,
                    }
                }
                if stop || !alive2.load(Ordering::Relaxed) {
                    break;
                }
                // Fire every due timer.
                while let Some(timer) = timers.pop_due() {
                    let actions = replica.step(Input::Timer(timer));
                    apply_actions(me, actions, &transport, &mut timers, topo.replicas.len());
                }
                // Wait for the next delivery, but never past the next
                // timer deadline or the idle poll.
                let wait = timers.until_next().unwrap_or(IDLE_POLL).min(IDLE_POLL);
                match in_rx.recv_timeout(wait) {
                    Ok(payload) => {
                        deliver(&mut replica, payload, &transport, &mut timers, me, &topo);
                        // Drain a bounded burst without re-waiting.
                        for _ in 0..DRAIN_BATCH {
                            match in_rx.try_recv() {
                                Ok(payload) => deliver(
                                    &mut replica,
                                    payload,
                                    &transport,
                                    &mut timers,
                                    me,
                                    &topo,
                                ),
                                Err(_) => break,
                            }
                        }
                    }
                    Err(RecvTimeoutError::Timeout) => {}
                    Err(RecvTimeoutError::Disconnected) => break,
                }
            }
            transport.shutdown();
            alive2.store(false, Ordering::Relaxed);
        })
        .expect("spawn node thread");
    NodeHandle {
        id,
        addr,
        ctl: ctl_tx,
        alive,
        join: Some(join),
    }
}

/// Spawns a replica running the [`bft_statemachine::CounterService`] —
/// the default service of `pbft-node` and the loopback tests.
pub fn spawn_counter_replica(id: ReplicaId, topo: Topology, listener: TcpListener) -> NodeHandle {
    spawn_counter_replica_faulted(id, topo, listener, None)
}

/// [`spawn_counter_replica`] with an optional [`FaultPlane`] on the
/// node's transport (the chaos-mode loopback cluster uses this).
pub fn spawn_counter_replica_faulted(
    id: ReplicaId,
    topo: Topology,
    listener: TcpListener,
    faults: Option<Arc<FaultPlane>>,
) -> NodeHandle {
    spawn_replica_faulted(
        id,
        topo,
        listener,
        |topo: &Topology| {
            bft_statemachine::CounterService::new(topo.clients + (3 * topo.f + 1) as u32)
        },
        faults,
    )
}

/// Checkpoint pages for the live BFS service. More pages than the
/// simulator's 64 so state-transfer fetches stay small under the Andrew
/// write volume.
pub const BFS_LIVE_BUCKETS: u64 = 128;

/// Spawns a replica running whatever service the topology's `service`
/// key selects — the dispatch point shared by `pbft-node` and the
/// loopback harness (including restarts, so a restarted BFS node never
/// comes back as a counter).
pub fn spawn_service_replica_faulted(
    id: ReplicaId,
    topo: Topology,
    listener: TcpListener,
    faults: Option<Arc<FaultPlane>>,
) -> NodeHandle {
    match topo.service {
        crate::config::ServiceKind::Counter => {
            spawn_counter_replica_faulted(id, topo, listener, faults)
        }
        crate::config::ServiceKind::Bfs => spawn_replica_faulted(
            id,
            topo,
            listener,
            |_topo: &Topology| bfs::BfsService::new_realtime(BFS_LIVE_BUCKETS),
            faults,
        ),
    }
}

/// [`spawn_service_replica_faulted`] without fault injection.
pub fn spawn_service_replica(id: ReplicaId, topo: Topology, listener: TcpListener) -> NodeHandle {
    spawn_service_replica_faulted(id, topo, listener, None)
}

/// Decodes one checksum-verified payload and steps the replica with it.
/// Undecodable payloads are dropped (the transport already verified the
/// checksum, so this means a peer speaking garbage, not line noise).
fn deliver<S: Service>(
    replica: &mut Replica<S>,
    payload: Vec<u8>,
    transport: &Transport,
    timers: &mut RtTimers<TimerId>,
    me: ReplicaId,
    topo: &Topology,
) {
    let mut slice = payload.as_slice();
    let Ok(msg) = Message::decode(&mut slice) else {
        return;
    };
    if !slice.is_empty() {
        return;
    }
    let actions = replica.step(Input::Deliver(msg));
    apply_actions(me, actions, transport, timers, topo.replicas.len());
}

/// Interprets replica actions against the real harness: sends encode
/// once and fan out shared frames; timer actions hit the wheel.
fn apply_actions(
    me: ReplicaId,
    actions: Vec<Action>,
    transport: &Transport,
    timers: &mut RtTimers<TimerId>,
    n: usize,
) {
    for action in actions {
        match action {
            Action::Send { to, msg } => {
                let frame: FrameBuf = Arc::new(frame_bytes(&msg));
                for dest in resolve_dests(me, &to, n) {
                    transport.send(dest, Arc::clone(&frame));
                }
            }
            Action::SetTimer { id, after } => timers.set(id, after),
            Action::CancelTimer { id } => timers.cancel(id),
        }
    }
}

/// Expands an action [`Target`] into concrete transport destinations.
fn resolve_dests(me: ReplicaId, to: &Target, n: usize) -> Vec<NodeId> {
    match to {
        Target::Replica(r) => vec![NodeId::Replica(*r)],
        Target::AllReplicas => (0..n as u32)
            .map(ReplicaId)
            .filter(|r| *r != me)
            .map(NodeId::Replica)
            .collect(),
        Target::Requester(Requester::Client(c)) => vec![NodeId::Client(*c)],
        Target::Requester(Requester::Replica(r)) => vec![NodeId::Replica(*r)],
        Target::Node(node) => vec![*node],
    }
}

/// Builds the oracle snapshot handed back over the control channel.
fn take_snapshot<S: Service>(
    replica: &Replica<S>,
    me: ReplicaId,
    transport: StatsSnapshot,
) -> Snapshot {
    let next = SeqNo(ReplicaDriver::last_executed(replica).0 + 1);
    let exec_blocker = match replica.debug_fetch() {
        Some(fetch) => format!("fetch: {fetch}"),
        None => replica.debug_exec_blocker(next),
    };
    Snapshot {
        id: me,
        view: replica.current_view().0,
        view_active: replica.view_active(),
        last_exec: ReplicaDriver::last_executed(replica),
        committed_frontier: ReplicaDriver::committed_frontier(replica),
        state_digest: ReplicaDriver::state_digest(replica),
        journal: ReplicaDriver::journal(replica).to_vec(),
        stats: replica.stats,
        transport,
        exec_blocker,
    }
}

/// The pooled event loop: same step loop as the direct path, but MAC
/// work rides the [`MacPool`]. Inbound payloads arrive pre-verified (in
/// arrival order, with an [`bft_core::AuthVerdict`] consumed through
/// [`ReplicaDriver::step_verified`]); outbound deferred-authenticator
/// messages ship to workers as bytes and leave through the pool's
/// order-preserving dispatcher, which also carries ready frames so the
/// node's output order is unchanged.
#[allow(clippy::too_many_arguments)]
fn run_pooled<S: Service>(
    me: ReplicaId,
    topo: &Topology,
    config: &bft_core::ReplicaConfig,
    keys: &bft_core::ClusterKeys,
    mut replica: Replica<S>,
    boot: Vec<Action>,
    transport: Transport,
    in_rx: Receiver<Vec<u8>>,
    mut timers: RtTimers<TimerId>,
    ctl_rx: Receiver<Ctl>,
    alive: Arc<AtomicBool>,
) {
    let n = topo.replicas.len();
    let transport = Arc::new(transport);
    let mut pool = MacPool::start(
        topo.workers,
        me,
        config,
        keys,
        in_rx,
        Arc::clone(&transport),
    );

    apply_actions_pooled(me, boot, &mut pool, &mut timers, n);

    loop {
        let mut stop = false;
        while let Ok(ctl) = ctl_rx.try_recv() {
            match ctl {
                Ctl::Snapshot(reply) => {
                    let _ = reply.send(take_snapshot(&replica, me, transport.stats()));
                }
                Ctl::Shutdown => stop = true,
            }
        }
        if stop || !alive.load(Ordering::Relaxed) {
            break;
        }
        while let Some(timer) = timers.pop_due() {
            let actions = replica.step(Input::Timer(timer));
            apply_actions_pooled(me, actions, &mut pool, &mut timers, n);
        }
        let wait = timers.until_next().unwrap_or(IDLE_POLL).min(IDLE_POLL);
        // recv_inbound already drains the verdict channel in bursts and
        // returns the in-order prefix, so no extra DRAIN_BATCH loop.
        match pool.recv_inbound(wait) {
            Ok(batch) => {
                for (payload, verdict) in batch {
                    deliver_verified(
                        &mut replica,
                        payload,
                        verdict,
                        &mut pool,
                        &mut timers,
                        me,
                        n,
                    );
                }
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    // Shutdown order matters: the transport's readers feed the pool's
    // forwarder, so kill the transport first, then drain the pool.
    transport.shutdown();
    pool.shutdown();
    alive.store(false, Ordering::Relaxed);
}

/// Pooled-path [`deliver`]: the payload was already decoded and checked
/// by a worker; decode our own (thread-local) copy and step with the
/// worker's verdict so the replica can skip redundant MAC checks.
fn deliver_verified<S: Service>(
    replica: &mut Replica<S>,
    payload: Vec<u8>,
    verdict: bft_core::AuthVerdict,
    pool: &mut MacPool,
    timers: &mut RtTimers<TimerId>,
    me: ReplicaId,
    n: usize,
) {
    let mut slice = payload.as_slice();
    let Ok(msg) = Message::decode(&mut slice) else {
        return;
    };
    if !slice.is_empty() {
        return;
    }
    let actions = replica.step_verified(Input::Deliver(msg), verdict);
    apply_actions_pooled(me, actions, pool, timers, n);
}

/// Pooled-path [`apply_actions`]: deferred-authenticator messages go to
/// workers as `(variant, content, nonce)` jobs; everything else encodes
/// here and enters the same ordered dispatcher as a ready frame.
fn apply_actions_pooled(
    me: ReplicaId,
    actions: Vec<Action>,
    pool: &mut MacPool,
    timers: &mut RtTimers<TimerId>,
    n: usize,
) {
    for action in actions {
        match action {
            Action::Send { to, msg } => {
                let dests = resolve_dests(me, &to, n);
                if dests.is_empty() {
                    continue;
                }
                match msg.deferred_auth_parts() {
                    Some((variant, content, nonce)) => {
                        pool.send_deferred(variant, content, nonce, dests)
                    }
                    None => pool.send_ready(Arc::new(frame_bytes(&msg)), dests),
                }
            }
            Action::SetTimer { id, after } => timers.set(id, after),
            Action::CancelTimer { id } => timers.cancel(id),
        }
    }
}
