//! Cluster topology configuration shared by `pbft-node` and
//! `pbft-client`.
//!
//! The format is a deliberately tiny line-oriented `key = value` file —
//! no external parser dependencies, every key checkable by eye:
//!
//! ```text
//! # pbft cluster topology
//! f = 1
//! clients = 8
//! key_seed = 42
//! view_change_ms = 250
//! status_ms = 100
//! checkpoint_interval = 64
//! batching = true
//! replica.0 = 127.0.0.1:5100
//! replica.1 = 127.0.0.1:5101
//! replica.2 = 127.0.0.1:5102
//! replica.3 = 127.0.0.1:5103
//! ```
//!
//! A sharded deployment adds `shard.<k>.replica.<n>` sections for the
//! extra groups (plain `replica.<n>` keys are shard 0, so every
//! single-shard file from before sharding parses unchanged):
//!
//! ```text
//! f = 1
//! replica.0 = 127.0.0.1:5100        # shard 0
//! # ...
//! shard.1.replica.0 = 127.0.0.1:5200
//! shard.1.replica.1 = 127.0.0.1:5201
//! # ...
//! ```
//!
//! Durability is opt-in: `storage = wal` plus `data_dir = <path>` makes
//! every node persist the §4.3 durable set to an on-disk write-ahead log
//! under `<data_dir>/replica-<id>/`, and recover from it on boot. The
//! default `storage = mem` keeps the pre-storage behavior (nothing
//! touches disk, a node reboot loses volatile state only).
//!
//! Every group needs its full `3f + 1` addresses; duplicate replica ids
//! and duplicate listen addresses are rejected with the offending line.
//! Parse failures come back as a typed [`ConfigError`] carrying the
//! line, the key, and a [`ConfigErrorKind`]; its `Display` renders the
//! same human-readable messages `pbft-node` has always printed.
//! [`Topology::project`] narrows a parsed deployment to one shard so the
//! node and client runtimes stay single-group; per-shard key material
//! derives from `key_seed` through the shard id
//! ([`bft_core::ClusterKeys::generate_sharded`]), so MACs never verify
//! across groups.

use bft_core::{ClientConfig, ClusterKeys, ReplicaConfig};
use bft_types::{GroupParams, ShardId, ShardMap, SimDuration};
use std::collections::HashMap;
use std::net::SocketAddr;

/// Which replicated service the cluster runs (`service = ...` key).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServiceKind {
    /// The padded-counter benchmark service (default).
    Counter,
    /// BFS, the NFS-shaped file service (§6.3).
    Bfs,
}

impl ServiceKind {
    /// Config-file spelling of this service.
    pub fn name(&self) -> &'static str {
        match self {
            ServiceKind::Counter => "counter",
            ServiceKind::Bfs => "bfs",
        }
    }
}

impl std::fmt::Display for ServiceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Which storage engine each node runs (`storage = ...` key).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StorageKind {
    /// In-memory durability only (default): a node reboot keeps the
    /// durable set because the process keeps it, nothing touches disk.
    Mem,
    /// On-disk write-ahead log plus compressed checkpoint snapshots
    /// under `data_dir`; a SIGKILLed node recovers from disk on reboot.
    Wal,
}

impl StorageKind {
    /// Config-file spelling of this engine.
    pub fn name(&self) -> &'static str {
        match self {
            StorageKind::Mem => "mem",
            StorageKind::Wal => "wal",
        }
    }
}

impl std::fmt::Display for StorageKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What went wrong parsing a topology file. Paired with the line and
/// key context in [`ConfigError`]; the message text lives in that
/// type's `Display`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigErrorKind {
    /// A non-comment line without a `key = value` shape.
    ExpectedKeyValue,
    /// `shard.` prefix without a `.`-separated remainder.
    BadShardKey,
    /// `shard.<k>` where `<k>` is not a `u32`.
    BadShardIndex,
    /// `shard.<k>.<something>` where `<something>` is not `replica.<n>`.
    UnknownShardKey,
    /// `replica.<n>` where `<n>` is not a `usize`.
    BadReplicaIndex,
    /// A replica value that does not parse as a socket address.
    BadAddress {
        /// The rejected value.
        value: String,
    },
    /// The same `(shard, replica)` id defined twice.
    DuplicateReplicaId {
        /// Line the id was first defined on.
        first_line: usize,
    },
    /// The same listen address given to two nodes (any shard).
    DuplicateAddress {
        /// The repeated address.
        addr: SocketAddr,
        /// Line the address was first used on.
        first_line: usize,
    },
    /// A scalar key whose value failed to parse (`f = x`,
    /// `batching = maybe`, ...).
    BadValue {
        /// The rejected value.
        value: String,
    },
    /// `service = <value>` outside the allowed set.
    UnknownService {
        /// The rejected value.
        value: String,
    },
    /// `storage = <value>` outside the allowed set.
    UnknownStorage {
        /// The rejected value.
        value: String,
    },
    /// `pipeline_depth = 0` would deadlock the primary.
    PipelineDepthZero,
    /// A key this format does not define.
    UnknownKey,
    /// `f` absent or zero — no group size to check addresses against.
    MissingF,
    /// `storage = wal` with no `data_dir` to put the log in.
    WalWithoutDataDir,
    /// A shard without its full contiguous `3f + 1` address set.
    IncompleteShard {
        /// The shard missing addresses.
        shard: u32,
        /// Required group size (`3f + 1`).
        n: usize,
        /// The replica indices actually present, sorted.
        indices: Vec<usize>,
    },
}

/// A topology parse failure: where ([`line`](ConfigError::line)), what
/// key ([`key`](ConfigError::key)), and what kind of problem
/// ([`kind`](ConfigError::kind)). `Display` renders the exact
/// line-numbered messages the CLI binaries print.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line the error was detected on; `None` for whole-file
    /// problems (missing `f`, incomplete shards).
    pub line: Option<usize>,
    /// The config key involved, when one exists.
    pub key: Option<String>,
    /// The problem itself.
    pub kind: ConfigErrorKind,
}

impl ConfigError {
    fn at(line: usize, key: &str, kind: ConfigErrorKind) -> Self {
        ConfigError {
            line: Some(line),
            key: Some(key.to_string()),
            kind,
        }
    }

    fn whole_file(key: Option<&str>, kind: ConfigErrorKind) -> Self {
        ConfigError {
            line: None,
            key: key.map(str::to_string),
            kind,
        }
    }
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if let Some(line) = self.line {
            write!(f, "line {line}: ")?;
        }
        let key = self.key.as_deref().unwrap_or("");
        match &self.kind {
            ConfigErrorKind::ExpectedKeyValue => write!(f, "expected `key = value`"),
            ConfigErrorKind::BadShardKey => write!(f, "bad shard key `{key}`"),
            ConfigErrorKind::BadShardIndex => write!(f, "bad shard index `{key}`"),
            ConfigErrorKind::UnknownShardKey => {
                write!(
                    f,
                    "unknown shard key `{key}` (expected shard.<k>.replica.<n>)"
                )
            }
            ConfigErrorKind::BadReplicaIndex => write!(f, "bad replica index `{key}`"),
            ConfigErrorKind::BadAddress { value } => write!(f, "bad address `{value}`"),
            ConfigErrorKind::DuplicateReplicaId { first_line } => {
                write!(
                    f,
                    "duplicate replica id `{key}` (first defined on line {first_line})"
                )
            }
            ConfigErrorKind::DuplicateAddress { addr, first_line } => {
                write!(
                    f,
                    "duplicate listen address `{addr}` (first used on line {first_line})"
                )
            }
            ConfigErrorKind::BadValue { value } => write!(f, "bad {key} `{value}`"),
            ConfigErrorKind::UnknownService { value } => {
                write!(f, "unknown service `{value}` (allowed: counter, bfs)")
            }
            ConfigErrorKind::UnknownStorage { value } => {
                write!(f, "unknown storage `{value}` (allowed: mem, wal)")
            }
            ConfigErrorKind::PipelineDepthZero => {
                write!(f, "pipeline_depth must be at least 1")
            }
            ConfigErrorKind::UnknownKey => write!(f, "unknown key `{key}`"),
            ConfigErrorKind::MissingF => write!(f, "missing or zero `f`"),
            ConfigErrorKind::WalWithoutDataDir => {
                write!(f, "storage = wal requires `data_dir`")
            }
            ConfigErrorKind::IncompleteShard { shard, n, indices } => {
                let what = if *shard == 0 {
                    "replica".to_string()
                } else {
                    format!("shard.{shard}.replica")
                };
                write!(
                    f,
                    "shard {shard}: need {what}.0 .. {what}.{} (3f+1 = {n} addresses), \
                     got indices {indices:?}",
                    n - 1
                )
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// A parsed cluster topology: the whole deployment plus the shard this
/// view describes ([`Topology::parse`] yields the shard-0 view;
/// [`Topology::project`] selects another).
#[derive(Clone, Debug, PartialEq)]
pub struct Topology {
    /// Fault threshold; every group needs `3f + 1` replica addresses.
    pub f: usize,
    /// Number of client principals provisioned in the key tables.
    pub clients: u32,
    /// Seed all nodes derive shared key material from (via the shard id).
    pub key_seed: u64,
    /// Base view-change timeout in milliseconds.
    pub view_change_ms: u64,
    /// Status-message interval in milliseconds.
    pub status_ms: u64,
    /// Checkpoint period `K`.
    pub checkpoint_interval: u64,
    /// Whether request batching is enabled.
    pub batching: bool,
    /// MAC worker pool size per node. `0` disables the pool: all
    /// authentication work stays on the protocol thread.
    pub workers: usize,
    /// Batches the primary keeps in flight at once (clamped to the
    /// protocol window by `bft-core`).
    pub pipeline_depth: u64,
    /// Which replicated service the nodes serve (`counter` | `bfs`).
    pub service: ServiceKind,
    /// Whether replicas execute prepared requests tentatively (§5.1.2).
    /// On by default; benchmarks disable it to measure the fast path's
    /// contribution.
    pub tentative_execution: bool,
    /// Which storage engine nodes run (`mem` | `wal`).
    pub storage: StorageKind,
    /// Directory the `wal` engine keeps per-replica state under
    /// (required when `storage = wal`, ignored otherwise).
    pub data_dir: Option<String>,
    /// The shard this topology view describes (key derivation, routing).
    pub shard: ShardId,
    /// Listen addresses of this shard's replicas, indexed by replica id.
    /// Mutate through [`Topology::set_replicas`] to keep `all_shards` in
    /// sync.
    pub replicas: Vec<SocketAddr>,
    /// Listen addresses of every shard in the deployment (index = shard
    /// id); `all_shards[shard.0]` always equals `replicas`.
    pub all_shards: Vec<Vec<SocketAddr>>,
}

impl Topology {
    /// A localhost topology for `3f + 1` replicas on consecutive ports.
    pub fn localhost(f: usize, clients: u32, base_port: u16) -> Self {
        Self::localhost_sharded(f, clients, base_port, 1)
    }

    /// A localhost deployment of `shards` groups of `3f + 1` replicas;
    /// shard `k` replica `i` listens on `base_port + k*n + i`. The
    /// returned view is shard 0 (see [`Topology::project`]).
    pub fn localhost_sharded(f: usize, clients: u32, base_port: u16, shards: u32) -> Self {
        let n = 3 * f + 1;
        let all_shards: Vec<Vec<SocketAddr>> = (0..shards)
            .map(|k| {
                (0..n)
                    .map(|i| {
                        // Built directly rather than parsed from a string:
                        // this constructor must be infallible (ports are u16
                        // by construction), and a panic here once masked real
                        // malformed-address reporting in `parse`.
                        SocketAddr::new(
                            std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                            base_port.wrapping_add((k as usize * n + i) as u16),
                        )
                    })
                    .collect()
            })
            .collect();
        Topology {
            f,
            clients,
            key_seed: 42,
            view_change_ms: 250,
            status_ms: 100,
            checkpoint_interval: 64,
            batching: true,
            workers: 0,
            pipeline_depth: 8,
            service: ServiceKind::Counter,
            tentative_execution: true,
            storage: StorageKind::Mem,
            data_dir: None,
            shard: ShardId(0),
            replicas: all_shards[0].clone(),
            all_shards,
        }
    }

    /// Narrows this deployment to one shard: the returned topology has
    /// that shard's addresses in `replicas` and derives that shard's key
    /// material, while keeping the full deployment in `all_shards` for
    /// client-side routing. Shard 0's projection is the parse result
    /// itself.
    pub fn project(&self, shard: ShardId) -> Self {
        assert!(
            (shard.0 as usize) < self.all_shards.len(),
            "shard {shard} out of range ({} shards)",
            self.all_shards.len()
        );
        Topology {
            shard,
            replicas: self.all_shards[shard.0 as usize].clone(),
            ..self.clone()
        }
    }

    /// Number of shards in the deployment.
    pub fn num_shards(&self) -> u32 {
        self.all_shards.len() as u32
    }

    /// The uniform keyspace partition clients route by.
    pub fn shard_map(&self) -> ShardMap {
        ShardMap::uniform(self.num_shards())
    }

    /// Replaces this shard's listen addresses, keeping the deployment
    /// view in sync (loopback harnesses bind ephemeral ports after the
    /// fact).
    pub fn set_replicas(&mut self, replicas: Vec<SocketAddr>) {
        self.all_shards[self.shard.0 as usize] = replicas.clone();
        self.replicas = replicas;
    }

    /// Parses the config file format documented at the module level.
    /// Returns the shard-0 view of the deployment.
    pub fn parse(text: &str) -> Result<Self, ConfigError> {
        let mut topo = Topology {
            f: 0,
            clients: 4,
            key_seed: 42,
            view_change_ms: 250,
            status_ms: 100,
            checkpoint_interval: 64,
            batching: true,
            workers: 0,
            pipeline_depth: 8,
            service: ServiceKind::Counter,
            tentative_execution: true,
            storage: StorageKind::Mem,
            data_dir: None,
            shard: ShardId(0),
            replicas: Vec::new(),
            all_shards: Vec::new(),
        };
        // (shard, replica id) -> (address, 1-based line) for every
        // `replica.<n>` / `shard.<k>.replica.<n>` line seen.
        let mut replicas: Vec<(u32, usize, SocketAddr, usize)> = Vec::new();
        let mut seen_ids: HashMap<(u32, usize), usize> = HashMap::new();
        let mut seen_addrs: HashMap<SocketAddr, usize> = HashMap::new();
        for (lineno, raw) in text.lines().enumerate() {
            let lineno = lineno + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(ConfigError {
                    line: Some(lineno),
                    key: None,
                    kind: ConfigErrorKind::ExpectedKeyValue,
                });
            };
            let (key, value) = (key.trim(), value.trim());
            let parse_u64 = |v: &str, what: &str| {
                v.parse::<u64>().map_err(|_| {
                    ConfigError::at(lineno, what, ConfigErrorKind::BadValue { value: v.into() })
                })
            };
            // `replica.<n>` is shorthand for `shard.0.replica.<n>`.
            let replica_key = if let Some(rest) = key.strip_prefix("shard.") {
                let Some((shard, sub)) = rest.split_once('.') else {
                    return Err(ConfigError::at(lineno, key, ConfigErrorKind::BadShardKey));
                };
                let shard: u32 = shard
                    .parse()
                    .map_err(|_| ConfigError::at(lineno, key, ConfigErrorKind::BadShardIndex))?;
                let Some(idx) = sub.strip_prefix("replica.") else {
                    return Err(ConfigError::at(
                        lineno,
                        key,
                        ConfigErrorKind::UnknownShardKey,
                    ));
                };
                Some((shard, idx))
            } else {
                key.strip_prefix("replica.").map(|idx| (0, idx))
            };
            if let Some((shard, idx)) = replica_key {
                let idx: usize = idx
                    .parse()
                    .map_err(|_| ConfigError::at(lineno, key, ConfigErrorKind::BadReplicaIndex))?;
                let addr: SocketAddr = value.parse().map_err(|_| {
                    ConfigError::at(
                        lineno,
                        key,
                        ConfigErrorKind::BadAddress {
                            value: value.into(),
                        },
                    )
                })?;
                if let Some(first) = seen_ids.insert((shard, idx), lineno) {
                    return Err(ConfigError::at(
                        lineno,
                        key,
                        ConfigErrorKind::DuplicateReplicaId { first_line: first },
                    ));
                }
                if let Some(first) = seen_addrs.insert(addr, lineno) {
                    return Err(ConfigError::at(
                        lineno,
                        key,
                        ConfigErrorKind::DuplicateAddress {
                            addr,
                            first_line: first,
                        },
                    ));
                }
                replicas.push((shard, idx, addr, lineno));
                continue;
            }
            match key {
                "f" => topo.f = parse_u64(value, "f")? as usize,
                "clients" => topo.clients = parse_u64(value, "clients")? as u32,
                "key_seed" => topo.key_seed = parse_u64(value, "key_seed")?,
                "view_change_ms" => topo.view_change_ms = parse_u64(value, "view_change_ms")?,
                "status_ms" => topo.status_ms = parse_u64(value, "status_ms")?,
                "checkpoint_interval" => {
                    topo.checkpoint_interval = parse_u64(value, "checkpoint_interval")?
                }
                "batching" => {
                    topo.batching = match value {
                        "true" => true,
                        "false" => false,
                        _ => {
                            return Err(ConfigError::at(
                                lineno,
                                key,
                                ConfigErrorKind::BadValue {
                                    value: value.into(),
                                },
                            ))
                        }
                    }
                }
                "workers" => topo.workers = parse_u64(value, "workers")? as usize,
                "service" => {
                    topo.service = match value {
                        "counter" => ServiceKind::Counter,
                        "bfs" => ServiceKind::Bfs,
                        _ => {
                            return Err(ConfigError::at(
                                lineno,
                                key,
                                ConfigErrorKind::UnknownService {
                                    value: value.into(),
                                },
                            ))
                        }
                    }
                }
                "storage" => {
                    topo.storage = match value {
                        "mem" => StorageKind::Mem,
                        "wal" => StorageKind::Wal,
                        _ => {
                            return Err(ConfigError::at(
                                lineno,
                                key,
                                ConfigErrorKind::UnknownStorage {
                                    value: value.into(),
                                },
                            ))
                        }
                    }
                }
                "data_dir" => topo.data_dir = Some(value.to_string()),
                "tentative_execution" => {
                    topo.tentative_execution = match value {
                        "true" => true,
                        "false" => false,
                        _ => {
                            return Err(ConfigError::at(
                                lineno,
                                key,
                                ConfigErrorKind::BadValue {
                                    value: value.into(),
                                },
                            ))
                        }
                    }
                }
                "pipeline_depth" => {
                    topo.pipeline_depth = parse_u64(value, "pipeline_depth")?;
                    if topo.pipeline_depth == 0 {
                        return Err(ConfigError::at(
                            lineno,
                            key,
                            ConfigErrorKind::PipelineDepthZero,
                        ));
                    }
                }
                _ => return Err(ConfigError::at(lineno, key, ConfigErrorKind::UnknownKey)),
            }
        }
        if topo.f == 0 {
            return Err(ConfigError::whole_file(
                Some("f"),
                ConfigErrorKind::MissingF,
            ));
        }
        if topo.storage == StorageKind::Wal && topo.data_dir.is_none() {
            return Err(ConfigError::whole_file(
                Some("storage"),
                ConfigErrorKind::WalWithoutDataDir,
            ));
        }
        let n = 3 * topo.f + 1;
        let num_shards = replicas.iter().map(|&(k, ..)| k + 1).max().unwrap_or(1);
        replicas.sort_by_key(|&(k, i, ..)| (k, i));
        for k in 0..num_shards {
            let indices: Vec<usize> = replicas
                .iter()
                .filter(|&&(s, ..)| s == k)
                .map(|&(_, i, ..)| i)
                .collect();
            if indices != (0..n).collect::<Vec<_>>() {
                return Err(ConfigError::whole_file(
                    None,
                    ConfigErrorKind::IncompleteShard {
                        shard: k,
                        n,
                        indices,
                    },
                ));
            }
        }
        topo.all_shards = (0..num_shards)
            .map(|k| {
                replicas
                    .iter()
                    .filter(|&&(s, ..)| s == k)
                    .map(|&(_, _, a, _)| a)
                    .collect()
            })
            .collect();
        topo.replicas = topo.all_shards[0].clone();
        Ok(topo)
    }

    /// Renders the topology back into the config file format.
    pub fn to_config_string(&self) -> String {
        let mut out = String::from("# pbft cluster topology\n");
        out.push_str(&format!("f = {}\n", self.f));
        out.push_str(&format!("clients = {}\n", self.clients));
        out.push_str(&format!("key_seed = {}\n", self.key_seed));
        out.push_str(&format!("view_change_ms = {}\n", self.view_change_ms));
        out.push_str(&format!("status_ms = {}\n", self.status_ms));
        out.push_str(&format!(
            "checkpoint_interval = {}\n",
            self.checkpoint_interval
        ));
        out.push_str(&format!("batching = {}\n", self.batching));
        out.push_str(&format!("workers = {}\n", self.workers));
        out.push_str(&format!("pipeline_depth = {}\n", self.pipeline_depth));
        out.push_str(&format!("service = {}\n", self.service));
        out.push_str(&format!(
            "tentative_execution = {}\n",
            self.tentative_execution
        ));
        out.push_str(&format!("storage = {}\n", self.storage));
        if let Some(dir) = &self.data_dir {
            out.push_str(&format!("data_dir = {dir}\n"));
        }
        for (k, shard) in self.all_shards.iter().enumerate() {
            for (i, addr) in shard.iter().enumerate() {
                if k == 0 {
                    out.push_str(&format!("replica.{i} = {addr}\n"));
                } else {
                    out.push_str(&format!("shard.{k}.replica.{i} = {addr}\n"));
                }
            }
        }
        out
    }

    /// Group parameters for this topology.
    pub fn group(&self) -> GroupParams {
        GroupParams::for_f(self.f)
    }

    /// The replica protocol configuration this topology implies.
    pub fn replica_config(&self) -> ReplicaConfig {
        let mut config = ReplicaConfig::small(self.f);
        config.shard = self.shard;
        config.num_clients = self.clients.max(config.num_clients);
        config.view_change_timeout = SimDuration::from_millis(self.view_change_ms);
        config.status_interval = SimDuration::from_millis(self.status_ms);
        config.checkpoint_interval = self.checkpoint_interval;
        config.opts.batching = self.batching;
        config.opts.tentative_execution = self.tentative_execution;
        config.pipeline_depth = Some(self.pipeline_depth);
        // Outbound MACs move to the pool only when a pool exists.
        config.defer_multicast_auth = self.workers > 0;
        // Small signature modulus: signatures are off the hot path in
        // MAC mode, and key generation happens on every node boot.
        config.sig_modulus_bits = 256;
        config
    }

    /// Client-side configuration derived from the replica configuration.
    pub fn client_config(&self) -> ClientConfig {
        ClientConfig::from_replica(&self.replica_config())
    }

    /// Deterministic shared key material for every node in this shard's
    /// group. Derivation runs through the shard id, so shard 0 matches
    /// the pre-sharding material bit for bit and MACs never verify across
    /// groups.
    pub fn keys(&self) -> ClusterKeys {
        let config = self.replica_config();
        ClusterKeys::generate_sharded(
            config.group,
            config.num_clients,
            config.sig_modulus_bits,
            self.key_seed,
            self.shard,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_through_config_text() {
        let topo = Topology::localhost(1, 8, 5100);
        let text = topo.to_config_string();
        let back = Topology::parse(&text).expect("parse own output");
        assert_eq!(back, topo);
    }

    #[test]
    fn parses_comments_and_whitespace() {
        let text = "\n# comment\n f = 1  # trailing\n\nreplica.0=127.0.0.1:1\nreplica.1 = 127.0.0.1:2\nreplica.2 = 127.0.0.1:3\nreplica.3 = 127.0.0.1:4\n";
        let topo = Topology::parse(text).expect("parse");
        assert_eq!(topo.f, 1);
        assert_eq!(topo.replicas.len(), 4);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Topology::parse("nonsense").is_err());
        assert!(Topology::parse("f = x").is_err());
        assert!(Topology::parse("unknown = 1").is_err());
        // Missing replica addresses for 3f+1.
        let err = Topology::parse("f = 1\nreplica.0 = 127.0.0.1:1\n")
            .unwrap_err()
            .to_string();
        assert!(err.contains("3f+1"), "{err}");
        // Zero f.
        assert!(Topology::parse("clients = 2").is_err());
    }

    /// Errors carry structured context — the line, the key, and a typed
    /// kind — not just a rendered string, so harnesses can match on the
    /// failure instead of grepping messages.
    #[test]
    fn errors_are_typed_with_line_key_and_kind() {
        let err = Topology::parse("f = 1\nreplica.0 = nope\n").unwrap_err();
        assert_eq!(err.line, Some(2));
        assert_eq!(err.key.as_deref(), Some("replica.0"));
        assert_eq!(
            err.kind,
            ConfigErrorKind::BadAddress {
                value: "nope".into()
            }
        );
        let err = Topology::parse("f = 1\nbogus = 1\n").unwrap_err();
        assert_eq!(err.kind, ConfigErrorKind::UnknownKey);
        assert_eq!(err.key.as_deref(), Some("bogus"));
        let err = Topology::parse("clients = 2").unwrap_err();
        assert_eq!(err.line, None, "whole-file errors carry no line");
        assert_eq!(err.kind, ConfigErrorKind::MissingF);
        assert_eq!(err.to_string(), "missing or zero `f`");
        // The std Error impl makes it boxable for callers that want one.
        let boxed: Box<dyn std::error::Error> = Box::new(err);
        assert!(boxed.to_string().contains("missing"));
    }

    /// Regression: a malformed replica address must come back as a
    /// line-numbered `Err`, never a panic, so `pbft-node` can print a
    /// readable config error.
    #[test]
    fn malformed_address_is_an_error_not_a_panic() {
        for bad in [
            "f = 1\nreplica.0 = not-an-address\n",
            "f = 1\nreplica.0 = 127.0.0.1\n",       // missing port
            "f = 1\nreplica.0 = 127.0.0.1:99999\n", // port out of range
            "f = 1\nreplica.0 = 300.0.0.1:5100\n",  // bad octet
        ] {
            let err = std::panic::catch_unwind(|| Topology::parse(bad))
                .expect("parse must not panic")
                .expect_err("malformed address must be rejected")
                .to_string();
            assert!(err.contains("line 2"), "error names the line: {err}");
            assert!(
                err.contains("bad address"),
                "error names the problem: {err}"
            );
        }
        // A malformed index is reported by key, also without panicking.
        let err = Topology::parse("f = 1\nreplica.zero = 127.0.0.1:5100\n")
            .unwrap_err()
            .to_string();
        assert!(err.contains("bad replica index"), "{err}");
    }

    #[test]
    fn worker_and_pipeline_keys_roundtrip() {
        let mut topo = Topology::localhost(1, 8, 5100);
        topo.workers = 3;
        topo.pipeline_depth = 4;
        let back = Topology::parse(&topo.to_config_string()).expect("parse own output");
        assert_eq!(back, topo);
        let rc = back.replica_config();
        assert_eq!(rc.pipeline_depth, Some(4));
        assert!(rc.defer_multicast_auth);
        // No pool → no deferred MACs.
        let mut solo = topo.clone();
        solo.workers = 0;
        assert!(!solo.replica_config().defer_multicast_auth);
        // A zero depth would deadlock the primary; reject it at parse.
        assert!(Topology::parse("f = 1\npipeline_depth = 0\n").is_err());
        assert!(Topology::parse("f = 1\nworkers = x\n").is_err());
    }

    /// The `service` key selects which state machine the nodes run.
    /// Absent key → counter (every pre-BFS config file parses unchanged);
    /// unknown values are rejected naming the line and the alternatives.
    #[test]
    fn service_key_parses_validates_and_defaults() {
        let base = "f = 1\nreplica.0 = 127.0.0.1:1\nreplica.1 = 127.0.0.1:2\n\
                    replica.2 = 127.0.0.1:3\nreplica.3 = 127.0.0.1:4\n";
        // Default: counter.
        let topo = Topology::parse(base).expect("parse");
        assert_eq!(topo.service, ServiceKind::Counter);
        assert!(topo.tentative_execution);
        // Explicit values.
        let topo = Topology::parse(&format!("service = bfs\n{base}")).expect("parse");
        assert_eq!(topo.service, ServiceKind::Bfs);
        let topo = Topology::parse(&format!("service = counter\n{base}")).expect("parse");
        assert_eq!(topo.service, ServiceKind::Counter);
        // Unknown service: line-numbered error naming the allowed values.
        let err = Topology::parse(&format!("{base}service = nfs\n"))
            .unwrap_err()
            .to_string();
        assert!(err.contains("line 6"), "{err}");
        assert!(err.contains("unknown service `nfs`"), "{err}");
        assert!(err.contains("counter"), "{err}");
        assert!(err.contains("bfs"), "{err}");
        // Round trip.
        let mut topo = Topology::localhost(1, 8, 5100);
        topo.service = ServiceKind::Bfs;
        let back = Topology::parse(&topo.to_config_string()).expect("parse own output");
        assert_eq!(back, topo);
    }

    /// The `storage` key selects the durability engine. Absent key →
    /// mem (every pre-storage config file parses unchanged); `wal`
    /// demands a `data_dir`; unknown engines are rejected naming the
    /// line and the alternatives.
    #[test]
    fn storage_key_parses_validates_and_defaults() {
        let base = "f = 1\nreplica.0 = 127.0.0.1:1\nreplica.1 = 127.0.0.1:2\n\
                    replica.2 = 127.0.0.1:3\nreplica.3 = 127.0.0.1:4\n";
        // Default: mem, no data_dir.
        let topo = Topology::parse(base).expect("parse");
        assert_eq!(topo.storage, StorageKind::Mem);
        assert_eq!(topo.data_dir, None);
        // Explicit wal with a directory.
        let topo = Topology::parse(&format!("storage = wal\ndata_dir = /tmp/pbft\n{base}"))
            .expect("parse");
        assert_eq!(topo.storage, StorageKind::Wal);
        assert_eq!(topo.data_dir.as_deref(), Some("/tmp/pbft"));
        // wal without data_dir is a whole-file error.
        let err = Topology::parse(&format!("storage = wal\n{base}")).unwrap_err();
        assert_eq!(err.kind, ConfigErrorKind::WalWithoutDataDir);
        assert!(err.to_string().contains("requires `data_dir`"), "{err}");
        // Unknown engine: line-numbered, names the alternatives.
        let err = Topology::parse(&format!("{base}storage = paper\n")).unwrap_err();
        assert_eq!(err.line, Some(6));
        assert_eq!(
            err.kind,
            ConfigErrorKind::UnknownStorage {
                value: "paper".into()
            }
        );
        assert!(err.to_string().contains("mem, wal"), "{err}");
        // Round trip, with and without data_dir.
        let mut topo = Topology::localhost(1, 8, 5100);
        topo.storage = StorageKind::Wal;
        topo.data_dir = Some("/var/lib/pbft".into());
        let back = Topology::parse(&topo.to_config_string()).expect("parse own output");
        assert_eq!(back, topo);
        topo.storage = StorageKind::Mem;
        topo.data_dir = None;
        let back = Topology::parse(&topo.to_config_string()).expect("parse own output");
        assert_eq!(back, topo);
    }

    #[test]
    fn tentative_execution_key_parses_and_reaches_replica_config() {
        let mut topo = Topology::localhost(1, 8, 5100);
        assert!(topo.replica_config().opts.tentative_execution);
        topo.tentative_execution = false;
        let back = Topology::parse(&topo.to_config_string()).expect("parse own output");
        assert_eq!(back, topo);
        assert!(!back.replica_config().opts.tentative_execution);
        assert!(Topology::parse("f = 1\ntentative_execution = maybe\n").is_err());
    }

    #[test]
    fn sharded_topology_roundtrips_and_projects() {
        let topo = Topology::localhost_sharded(1, 8, 5100, 3);
        assert_eq!(topo.num_shards(), 3);
        assert_eq!(topo.shard_map().num_shards(), 3);
        let text = topo.to_config_string();
        assert!(
            text.contains("shard.1.replica.0 = 127.0.0.1:5104"),
            "{text}"
        );
        let back = Topology::parse(&text).expect("parse own output");
        assert_eq!(back, topo);
        // Projection selects the shard's addresses and keeps the
        // deployment for routing.
        let s2 = back.project(ShardId(2));
        assert_eq!(s2.replicas, back.all_shards[2]);
        assert_eq!(s2.all_shards, back.all_shards);
        assert_eq!(s2.replica_config().shard, ShardId(2));
        // Shard 0's projection is the parse result itself.
        assert_eq!(back.project(ShardId(0)), back);
        // Per-shard key material differs; shard 0 matches the unsharded
        // derivation bit for bit.
        assert_ne!(s2.keys().mac_domain, 0);
        assert_eq!(back.keys().mac_domain, 0);
    }

    /// Duplicate replica ids and duplicate listen addresses are
    /// config-file mistakes that would produce a cluster where two nodes
    /// fight over one identity or one port; both are rejected with the
    /// offending line.
    #[test]
    fn rejects_duplicate_ids_and_addresses_naming_the_line() {
        // Same replica id twice (shard 0).
        let err = Topology::parse(
            "f = 1\nreplica.0 = 127.0.0.1:1\nreplica.1 = 127.0.0.1:2\n\
             replica.1 = 127.0.0.1:3\nreplica.3 = 127.0.0.1:4\n",
        )
        .unwrap_err()
        .to_string();
        assert!(err.contains("line 4"), "{err}");
        assert!(err.contains("duplicate replica id `replica.1`"), "{err}");
        assert!(err.contains("first defined on line 3"), "{err}");
        // Same id twice within a non-zero shard section.
        let base = "f = 1\nreplica.0 = 127.0.0.1:1\nreplica.1 = 127.0.0.1:2\n\
                    replica.2 = 127.0.0.1:3\nreplica.3 = 127.0.0.1:4\n";
        let err = Topology::parse(&format!(
            "{base}shard.1.replica.0 = 127.0.0.1:11\nshard.1.replica.0 = 127.0.0.1:12\n"
        ))
        .unwrap_err()
        .to_string();
        assert!(err.contains("line 7"), "{err}");
        assert!(
            err.contains("duplicate replica id `shard.1.replica.0`"),
            "{err}"
        );
        // Same listen address on two nodes — across shards, even.
        let err = Topology::parse(&format!("{base}shard.1.replica.0 = 127.0.0.1:2\n"))
            .unwrap_err()
            .to_string();
        assert!(err.contains("line 6"), "{err}");
        assert!(
            err.contains("duplicate listen address `127.0.0.1:2`"),
            "{err}"
        );
        assert!(err.contains("first used on line 3"), "{err}");
        // The same id on *different* shards is fine.
        let ok = Topology::parse(&format!(
            "{base}shard.1.replica.0 = 127.0.0.1:11\nshard.1.replica.1 = 127.0.0.1:12\n\
             shard.1.replica.2 = 127.0.0.1:13\nshard.1.replica.3 = 127.0.0.1:14\n"
        ))
        .expect("two disjoint shards parse");
        assert_eq!(ok.num_shards(), 2);
    }

    #[test]
    fn incomplete_shard_sections_are_rejected() {
        let base = "f = 1\nreplica.0 = 127.0.0.1:1\nreplica.1 = 127.0.0.1:2\n\
                    replica.2 = 127.0.0.1:3\nreplica.3 = 127.0.0.1:4\n";
        // Shard 1 present but short of 3f+1 addresses.
        let err = Topology::parse(&format!("{base}shard.1.replica.0 = 127.0.0.1:11\n"))
            .unwrap_err()
            .to_string();
        assert!(err.contains("shard 1"), "{err}");
        assert!(err.contains("3f+1"), "{err}");
        // A shard gap (shard 2 defined, shard 1 absent) is a missing
        // group, not a sparse numbering scheme.
        let err = Topology::parse(&format!(
            "{base}shard.2.replica.0 = 127.0.0.1:21\nshard.2.replica.1 = 127.0.0.1:22\n\
             shard.2.replica.2 = 127.0.0.1:23\nshard.2.replica.3 = 127.0.0.1:24\n"
        ))
        .unwrap_err()
        .to_string();
        assert!(err.contains("shard 1"), "{err}");
        // Malformed shard keys are named.
        assert!(Topology::parse("f = 1\nshard.x.replica.0 = 127.0.0.1:1\n").is_err());
        assert!(Topology::parse("f = 1\nshard.1.nonsense.0 = 127.0.0.1:1\n").is_err());
    }

    #[test]
    fn derived_configs_are_consistent() {
        let topo = Topology::localhost(1, 16, 5100);
        let rc = topo.replica_config();
        assert_eq!(rc.group.n, 4);
        assert_eq!(rc.view_change_timeout, SimDuration::from_millis(250));
        assert_eq!(rc.checkpoint_interval, 64);
        // Keys derive deterministically: two nodes that each ran
        // `topo.keys()` independently verify each other's MACs.
        use bft_core::authn::AuthState;
        use bft_types::{NodeId, ReplicaId};
        let mut side_a = AuthState::new(
            rc.auth,
            NodeId::Replica(ReplicaId(0)),
            rc.group,
            rc.num_clients,
            &topo.keys(),
        );
        let side_b = AuthState::new(
            rc.auth,
            NodeId::Replica(ReplicaId(1)),
            rc.group,
            rc.num_clients,
            &topo.keys(),
        );
        let auth = side_a.mac_to(NodeId::Replica(ReplicaId(1)), b"payload");
        assert!(side_b.verify(NodeId::Replica(ReplicaId(0)), b"payload", &auth));
    }
}
