//! Cluster topology configuration shared by `pbft-node` and
//! `pbft-client`.
//!
//! The format is a deliberately tiny line-oriented `key = value` file —
//! no external parser dependencies, every key checkable by eye:
//!
//! ```text
//! # pbft cluster topology
//! f = 1
//! clients = 8
//! key_seed = 42
//! view_change_ms = 250
//! status_ms = 100
//! checkpoint_interval = 64
//! batching = true
//! replica.0 = 127.0.0.1:5100
//! replica.1 = 127.0.0.1:5101
//! replica.2 = 127.0.0.1:5102
//! replica.3 = 127.0.0.1:5103
//! ```
//!
//! Every node derives identical key material from `key_seed`
//! ([`bft_core::ClusterKeys::generate`] is deterministic), so the file
//! alone boots a working cluster.

use bft_core::{ClientConfig, ClusterKeys, ReplicaConfig};
use bft_types::{GroupParams, SimDuration};
use std::net::SocketAddr;

/// A parsed cluster topology.
#[derive(Clone, Debug, PartialEq)]
pub struct Topology {
    /// Fault threshold; the cluster needs `3f + 1` replica addresses.
    pub f: usize,
    /// Number of client principals provisioned in the key tables.
    pub clients: u32,
    /// Seed all nodes derive shared key material from.
    pub key_seed: u64,
    /// Base view-change timeout in milliseconds.
    pub view_change_ms: u64,
    /// Status-message interval in milliseconds.
    pub status_ms: u64,
    /// Checkpoint period `K`.
    pub checkpoint_interval: u64,
    /// Whether request batching is enabled.
    pub batching: bool,
    /// MAC worker pool size per node. `0` disables the pool: all
    /// authentication work stays on the protocol thread.
    pub workers: usize,
    /// Batches the primary keeps in flight at once (clamped to the
    /// protocol window by `bft-core`).
    pub pipeline_depth: u64,
    /// Listen addresses, indexed by replica id.
    pub replicas: Vec<SocketAddr>,
}

impl Topology {
    /// A localhost topology for `3f + 1` replicas on consecutive ports.
    pub fn localhost(f: usize, clients: u32, base_port: u16) -> Self {
        let n = 3 * f + 1;
        Topology {
            f,
            clients,
            key_seed: 42,
            view_change_ms: 250,
            status_ms: 100,
            checkpoint_interval: 64,
            batching: true,
            workers: 0,
            pipeline_depth: 8,
            replicas: (0..n)
                .map(|i| {
                    // Built directly rather than parsed from a string: this
                    // constructor must be infallible (ports are u16 by
                    // construction), and a panic here once masked real
                    // malformed-address reporting in `parse`.
                    SocketAddr::new(
                        std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                        base_port.wrapping_add(i as u16),
                    )
                })
                .collect(),
        }
    }

    /// Parses the config file format documented at the module level.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut topo = Topology {
            f: 0,
            clients: 4,
            key_seed: 42,
            view_change_ms: 250,
            status_ms: 100,
            checkpoint_interval: 64,
            batching: true,
            workers: 0,
            pipeline_depth: 8,
            replicas: Vec::new(),
        };
        let mut replicas: Vec<(usize, SocketAddr)> = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("line {}: expected `key = value`", lineno + 1));
            };
            let (key, value) = (key.trim(), value.trim());
            let parse_u64 = |v: &str, what: &str| {
                v.parse::<u64>()
                    .map_err(|_| format!("line {}: bad {what} `{v}`", lineno + 1))
            };
            match key {
                "f" => topo.f = parse_u64(value, "f")? as usize,
                "clients" => topo.clients = parse_u64(value, "clients")? as u32,
                "key_seed" => topo.key_seed = parse_u64(value, "key_seed")?,
                "view_change_ms" => topo.view_change_ms = parse_u64(value, "view_change_ms")?,
                "status_ms" => topo.status_ms = parse_u64(value, "status_ms")?,
                "checkpoint_interval" => {
                    topo.checkpoint_interval = parse_u64(value, "checkpoint_interval")?
                }
                "batching" => {
                    topo.batching = match value {
                        "true" => true,
                        "false" => false,
                        _ => return Err(format!("line {}: bad batching `{value}`", lineno + 1)),
                    }
                }
                "workers" => topo.workers = parse_u64(value, "workers")? as usize,
                "pipeline_depth" => {
                    topo.pipeline_depth = parse_u64(value, "pipeline_depth")?;
                    if topo.pipeline_depth == 0 {
                        return Err(format!(
                            "line {}: pipeline_depth must be at least 1",
                            lineno + 1
                        ));
                    }
                }
                _ if key.starts_with("replica.") => {
                    let idx: usize = key["replica.".len()..]
                        .parse()
                        .map_err(|_| format!("line {}: bad replica index `{key}`", lineno + 1))?;
                    let addr: SocketAddr = value
                        .parse()
                        .map_err(|_| format!("line {}: bad address `{value}`", lineno + 1))?;
                    replicas.push((idx, addr));
                }
                _ => return Err(format!("line {}: unknown key `{key}`", lineno + 1)),
            }
        }
        if topo.f == 0 {
            return Err("missing or zero `f`".into());
        }
        let n = 3 * topo.f + 1;
        replicas.sort_by_key(|(i, _)| *i);
        let indices: Vec<usize> = replicas.iter().map(|(i, _)| *i).collect();
        if indices != (0..n).collect::<Vec<_>>() {
            return Err(format!(
                "need replica.0 .. replica.{} (3f+1 = {n} addresses), got indices {indices:?}",
                n - 1
            ));
        }
        topo.replicas = replicas.into_iter().map(|(_, a)| a).collect();
        Ok(topo)
    }

    /// Renders the topology back into the config file format.
    pub fn to_config_string(&self) -> String {
        let mut out = String::from("# pbft cluster topology\n");
        out.push_str(&format!("f = {}\n", self.f));
        out.push_str(&format!("clients = {}\n", self.clients));
        out.push_str(&format!("key_seed = {}\n", self.key_seed));
        out.push_str(&format!("view_change_ms = {}\n", self.view_change_ms));
        out.push_str(&format!("status_ms = {}\n", self.status_ms));
        out.push_str(&format!(
            "checkpoint_interval = {}\n",
            self.checkpoint_interval
        ));
        out.push_str(&format!("batching = {}\n", self.batching));
        out.push_str(&format!("workers = {}\n", self.workers));
        out.push_str(&format!("pipeline_depth = {}\n", self.pipeline_depth));
        for (i, addr) in self.replicas.iter().enumerate() {
            out.push_str(&format!("replica.{i} = {addr}\n"));
        }
        out
    }

    /// Group parameters for this topology.
    pub fn group(&self) -> GroupParams {
        GroupParams::for_f(self.f)
    }

    /// The replica protocol configuration this topology implies.
    pub fn replica_config(&self) -> ReplicaConfig {
        let mut config = ReplicaConfig::small(self.f);
        config.num_clients = self.clients.max(config.num_clients);
        config.view_change_timeout = SimDuration::from_millis(self.view_change_ms);
        config.status_interval = SimDuration::from_millis(self.status_ms);
        config.checkpoint_interval = self.checkpoint_interval;
        config.opts.batching = self.batching;
        config.pipeline_depth = Some(self.pipeline_depth);
        // Outbound MACs move to the pool only when a pool exists.
        config.defer_multicast_auth = self.workers > 0;
        // Small signature modulus: signatures are off the hot path in
        // MAC mode, and key generation happens on every node boot.
        config.sig_modulus_bits = 256;
        config
    }

    /// Client-side configuration derived from the replica configuration.
    pub fn client_config(&self) -> ClientConfig {
        ClientConfig::from_replica(&self.replica_config())
    }

    /// Deterministic shared key material for every node in the cluster.
    pub fn keys(&self) -> ClusterKeys {
        let config = self.replica_config();
        ClusterKeys::generate(
            config.group,
            config.num_clients,
            config.sig_modulus_bits,
            self.key_seed,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_through_config_text() {
        let topo = Topology::localhost(1, 8, 5100);
        let text = topo.to_config_string();
        let back = Topology::parse(&text).expect("parse own output");
        assert_eq!(back, topo);
    }

    #[test]
    fn parses_comments_and_whitespace() {
        let text = "\n# comment\n f = 1  # trailing\n\nreplica.0=127.0.0.1:1\nreplica.1 = 127.0.0.1:2\nreplica.2 = 127.0.0.1:3\nreplica.3 = 127.0.0.1:4\n";
        let topo = Topology::parse(text).expect("parse");
        assert_eq!(topo.f, 1);
        assert_eq!(topo.replicas.len(), 4);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Topology::parse("nonsense").is_err());
        assert!(Topology::parse("f = x").is_err());
        assert!(Topology::parse("unknown = 1").is_err());
        // Missing replica addresses for 3f+1.
        let err = Topology::parse("f = 1\nreplica.0 = 127.0.0.1:1\n").unwrap_err();
        assert!(err.contains("3f+1"), "{err}");
        // Zero f.
        assert!(Topology::parse("clients = 2").is_err());
    }

    /// Regression: a malformed replica address must come back as a
    /// line-numbered `Err`, never a panic, so `pbft-node` can print a
    /// readable config error.
    #[test]
    fn malformed_address_is_an_error_not_a_panic() {
        for bad in [
            "f = 1\nreplica.0 = not-an-address\n",
            "f = 1\nreplica.0 = 127.0.0.1\n",       // missing port
            "f = 1\nreplica.0 = 127.0.0.1:99999\n", // port out of range
            "f = 1\nreplica.0 = 300.0.0.1:5100\n",  // bad octet
        ] {
            let err = std::panic::catch_unwind(|| Topology::parse(bad))
                .expect("parse must not panic")
                .expect_err("malformed address must be rejected");
            assert!(err.contains("line 2"), "error names the line: {err}");
            assert!(
                err.contains("bad address"),
                "error names the problem: {err}"
            );
        }
        // A malformed index is reported by key, also without panicking.
        let err = Topology::parse("f = 1\nreplica.zero = 127.0.0.1:5100\n").unwrap_err();
        assert!(err.contains("bad replica index"), "{err}");
    }

    #[test]
    fn worker_and_pipeline_keys_roundtrip() {
        let mut topo = Topology::localhost(1, 8, 5100);
        topo.workers = 3;
        topo.pipeline_depth = 4;
        let back = Topology::parse(&topo.to_config_string()).expect("parse own output");
        assert_eq!(back, topo);
        let rc = back.replica_config();
        assert_eq!(rc.pipeline_depth, Some(4));
        assert!(rc.defer_multicast_auth);
        // No pool → no deferred MACs.
        let mut solo = topo.clone();
        solo.workers = 0;
        assert!(!solo.replica_config().defer_multicast_auth);
        // A zero depth would deadlock the primary; reject it at parse.
        assert!(Topology::parse("f = 1\npipeline_depth = 0\n").is_err());
        assert!(Topology::parse("f = 1\nworkers = x\n").is_err());
    }

    #[test]
    fn derived_configs_are_consistent() {
        let topo = Topology::localhost(1, 16, 5100);
        let rc = topo.replica_config();
        assert_eq!(rc.group.n, 4);
        assert_eq!(rc.view_change_timeout, SimDuration::from_millis(250));
        assert_eq!(rc.checkpoint_interval, 64);
        // Keys derive deterministically: two nodes that each ran
        // `topo.keys()` independently verify each other's MACs.
        use bft_core::authn::AuthState;
        use bft_types::{NodeId, ReplicaId};
        let mut side_a = AuthState::new(
            rc.auth,
            NodeId::Replica(ReplicaId(0)),
            rc.group,
            rc.num_clients,
            &topo.keys(),
        );
        let side_b = AuthState::new(
            rc.auth,
            NodeId::Replica(ReplicaId(1)),
            rc.group,
            rc.num_clients,
            &topo.keys(),
        );
        let auth = side_a.mac_to(NodeId::Replica(ReplicaId(1)), b"payload");
        assert!(side_b.verify(NodeId::Replica(ReplicaId(0)), b"payload", &auth));
    }
}
