//! Threaded TCP transport with framed messages, per-peer outbound
//! queues, and reconnect backoff.
//!
//! Design constraints, in order:
//!
//! * **The protocol thread never blocks on the network.** Each peer has
//!   a bounded outbound queue drained by a dedicated writer thread; a
//!   full queue or a dead connection *drops* the frame. PBFT is built
//!   for exactly that fault model (§2.2: unreliable links; status-driven
//!   retransmission recovers), so backpressure degrades to loss instead
//!   of stalling consensus.
//! * **Messages never cross threads.** Protocol messages share `Rc`
//!   bodies and are deliberately not `Send`. Reader threads verify
//!   framing checksums and ship raw payload bytes; the protocol thread
//!   decodes. Outbound, the protocol thread encodes once into an
//!   `Arc<[u8]>` frame that every destination's queue shares.
//! * **Connections carry an identity greeting.** The first frame on a
//!   dialed connection lists the dialer's [`NodeId`] identities (one
//!   for an ordinary node; many for a multiplexed client driver).
//!   Replicas use it to register return routes, which is how replies
//!   reach clients that are not listed in the topology (they dialed
//!   in).
//!
//! Topology-listed peers (replicas) get *persistent* dialers that
//! reconnect with exponential backoff forever; accepted connections are
//! registered dynamically and dropped when the socket dies.
//!
//! **Trust model caveat:** the greeting is *not* authenticated — any
//! TCP peer can claim any [`NodeId`] and capture that node's dynamic
//! return route until the real node's next (re)connection replaces it.
//! Protocol *safety* is unaffected (every protocol message is MACed
//! end-to-end, and misrouted replies are just lost frames), but an
//! active network attacker can suppress replies to a chosen client — a
//! liveness attack outside PBFT's fault model, which assumes the
//! network cannot be impersonated, only delayed/dropped. Like the
//! topology's derived `key_seed`, this is a development/test trust
//! level; a hardened deployment would authenticate the greeting (MAC
//! over a connection nonce) before registering a route.

use crate::inject::{FaultPlane, SendVerdict};
use bft_types::framing::{frame_bytes, FrameDecoder};
use bft_types::NodeId;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::{BinaryHeap, HashMap};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender, SyncSender, TrySendError};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// One encoded frame, shared across every destination of a fan-out.
pub type FrameBuf = Arc<Vec<u8>>;

/// Outbound queue depth per peer. Beyond this the sender is outrunning
/// the link and frames drop (the protocol's retransmission recovers).
const OUTBOUND_QUEUE: usize = 4096;

/// First reconnect delay; the per-attempt cap doubles per failure up to
/// [`BACKOFF_MAX`].
const BACKOFF_INITIAL: Duration = Duration::from_millis(20);
/// Reconnect backoff ceiling.
const BACKOFF_MAX: Duration = Duration::from_secs(2);

/// Reconnect delay for the `attempt`-th consecutive failure (0-based):
/// exponential cap with *equal jitter*. The cap doubles per attempt up
/// to [`BACKOFF_MAX`]; the delay is the cap's lower half plus a random
/// slice of the upper half, so retries never collapse below half the
/// cap yet never line up either. Without jitter, a healed partition has
/// every peer's dialer retrying in lockstep — each node's reconnect
/// burst lands on the same instant, exactly when the cluster is trying
/// to catch up.
fn backoff_delay(attempt: u32, rng: &mut StdRng) -> Duration {
    let cap = backoff_cap(attempt);
    let half = cap / 2;
    half + half.mul_f64(rng.random::<f64>())
}

/// The deterministic per-attempt backoff ceiling (exposed for the
/// schedule's unit test).
fn backoff_cap(attempt: u32) -> Duration {
    BACKOFF_INITIAL
        .saturating_mul(1u32 << attempt.min(16))
        .min(BACKOFF_MAX)
}

/// Transport counters (all monotonic; read with [`TransportStats::snapshot`]).
#[derive(Default)]
pub struct TransportStats {
    /// Frames handed to a writer queue.
    pub frames_sent: AtomicU64,
    /// Frames dropped: no route, full queue, or dead connection.
    pub frames_dropped: AtomicU64,
    /// Checksum-clean payloads delivered to the inbound channel.
    pub frames_received: AtomicU64,
    /// Connections that died on a framing error (corruption).
    pub framing_errors: AtomicU64,
    /// Successful outbound connects (including reconnects).
    pub connects: AtomicU64,
    /// Accepted inbound connections.
    pub accepts: AtomicU64,
    /// Frames held back by the fault-injection shim before delivery.
    pub injected_delayed: AtomicU64,
    /// Frames dropped by the fault-injection shim (never sent).
    pub injected_dropped: AtomicU64,
    /// Duplicate frame copies created by the fault-injection shim.
    pub injected_duplicated: AtomicU64,
}

/// A plain-value copy of the counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// See [`TransportStats::frames_sent`].
    pub frames_sent: u64,
    /// See [`TransportStats::frames_dropped`].
    pub frames_dropped: u64,
    /// See [`TransportStats::frames_received`].
    pub frames_received: u64,
    /// See [`TransportStats::framing_errors`].
    pub framing_errors: u64,
    /// See [`TransportStats::connects`].
    pub connects: u64,
    /// See [`TransportStats::accepts`].
    pub accepts: u64,
    /// See [`TransportStats::injected_delayed`].
    pub injected_delayed: u64,
    /// See [`TransportStats::injected_dropped`].
    pub injected_dropped: u64,
    /// See [`TransportStats::injected_duplicated`].
    pub injected_duplicated: u64,
}

impl TransportStats {
    /// Reads every counter.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            frames_sent: self.frames_sent.load(Ordering::Relaxed),
            frames_dropped: self.frames_dropped.load(Ordering::Relaxed),
            frames_received: self.frames_received.load(Ordering::Relaxed),
            framing_errors: self.framing_errors.load(Ordering::Relaxed),
            connects: self.connects.load(Ordering::Relaxed),
            accepts: self.accepts.load(Ordering::Relaxed),
            injected_delayed: self.injected_delayed.load(Ordering::Relaxed),
            injected_dropped: self.injected_dropped.load(Ordering::Relaxed),
            injected_duplicated: self.injected_duplicated.load(Ordering::Relaxed),
        }
    }
}

/// A dynamically registered return route (an accepted connection).
struct DynRoute {
    /// Connection generation; deregistration only removes its own.
    conn_id: u64,
    queue: SyncSender<FrameBuf>,
}

struct Shared {
    /// Shutdown flag. SeqCst on both sides: workers that insert into
    /// `socks`/`dynamic` re-check it *after* inserting, and `shutdown`
    /// sets it *before* draining, so every insert either happens before
    /// the drain or is cleaned up by its own re-check — never leaked.
    alive: AtomicBool,
    /// Return routes learned from connection greetings.
    dynamic: Mutex<HashMap<NodeId, DynRoute>>,
    /// Every live socket, for [`Transport::shutdown`] to interrupt
    /// blocked reads/writes. Keyed by a registration token so each
    /// connection's reader removes its entry when the connection dies —
    /// otherwise a flapping peer would leak one fd per reconnect.
    socks: Mutex<HashMap<u64, TcpStream>>,
    /// Join handles of every worker thread (dialers, acceptor, readers,
    /// writers, accepted connections). [`Transport::shutdown`] joins
    /// them all, so no transport thread outlives `shutdown()`'s return.
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
    /// Running worker-thread count (shutdown regression tests assert it
    /// reaches zero). Incremented before spawn, decremented on exit.
    live_threads: AtomicU64,
    stats: TransportStats,
    next_conn_id: AtomicU64,
}

impl Shared {
    /// Registers a socket for shutdown interruption; the returned token
    /// releases it via [`Shared::deregister_sock`].
    fn register_sock(&self, stream: &TcpStream) -> u64 {
        let token = self.next_conn_id.fetch_add(1, Ordering::Relaxed);
        if let Ok(clone) = stream.try_clone() {
            self.socks.lock().expect("socks lock").insert(token, clone);
        }
        // Re-check after inserting: a concurrent `shutdown` may already
        // have drained the map, in which case this socket missed the
        // close pass and its reader would block past `stop()`. Close it
        // here instead.
        if !self.is_alive() {
            if let Some(sock) = self.socks.lock().expect("socks lock").remove(&token) {
                let _ = sock.shutdown(Shutdown::Both);
            }
            let _ = stream.shutdown(Shutdown::Both);
        }
        token
    }

    fn deregister_sock(&self, token: u64) {
        self.socks.lock().expect("socks lock").remove(&token);
    }

    fn is_alive(&self) -> bool {
        self.alive.load(Ordering::SeqCst)
    }
}

/// Spawns a transport worker thread registered for shutdown joining.
fn spawn_worker<F>(shared: &Arc<Shared>, name: String, f: F)
where
    F: FnOnce() + Send + 'static,
{
    struct Running(Arc<Shared>);
    impl Drop for Running {
        fn drop(&mut self) {
            self.0.live_threads.fetch_sub(1, Ordering::SeqCst);
        }
    }
    shared.live_threads.fetch_add(1, Ordering::SeqCst);
    let shared2 = Arc::clone(shared);
    let handle = std::thread::Builder::new()
        .name(name)
        .spawn(move || {
            let _running = Running(shared2);
            f()
        })
        .expect("spawn transport worker");
    shared.threads.lock().expect("threads lock").push(handle);
}

/// The per-node transport endpoint.
pub struct Transport {
    me: NodeId,
    /// Persistent queues to topology-listed peers.
    peers: HashMap<NodeId, SyncSender<FrameBuf>>,
    shared: Arc<Shared>,
    /// Chaos-mode fault table consulted per outbound frame.
    faults: Option<Arc<FaultPlane>>,
    /// Queue to the delay worker that re-routes held-back frames.
    delay_tx: Option<SyncSender<DelayedFrame>>,
}

impl Transport {
    /// Starts a transport endpoint.
    ///
    /// `listener` accepts inbound connections (replicas listen; plain
    /// clients pass `None`). `peers` are dialed persistently with
    /// reconnect backoff. Checksum-verified inbound frame payloads are
    /// delivered on `inbound` in arrival order.
    pub fn start(
        me: NodeId,
        listener: Option<TcpListener>,
        peers: Vec<(NodeId, SocketAddr)>,
        inbound: Sender<Vec<u8>>,
    ) -> Transport {
        Self::start_as(vec![me], listener, peers, inbound)
    }

    /// [`Transport::start`] for an endpoint that greets as *several*
    /// identities: the multiplexed client driver runs many logical
    /// clients over one connection set, and every identity's return
    /// route must land here. `identities[0]` is the endpoint's primary
    /// name (used for thread labels and [`Transport::me`]).
    pub fn start_as(
        identities: Vec<NodeId>,
        listener: Option<TcpListener>,
        peers: Vec<(NodeId, SocketAddr)>,
        inbound: Sender<Vec<u8>>,
    ) -> Transport {
        Self::start_faulted(identities, listener, peers, inbound, None)
    }

    /// [`Transport::start_as`] with an optional fault-injection plane:
    /// every outbound frame asks the shared [`FaultPlane`] for a verdict
    /// before touching a peer queue, so one plane imposes partitions,
    /// loss, jitter, and duplication on a whole live cluster. `None`
    /// costs nothing on the send path.
    pub fn start_faulted(
        identities: Vec<NodeId>,
        listener: Option<TcpListener>,
        peers: Vec<(NodeId, SocketAddr)>,
        inbound: Sender<Vec<u8>>,
        faults: Option<Arc<FaultPlane>>,
    ) -> Transport {
        assert!(!identities.is_empty(), "transport needs an identity");
        let me = identities[0];
        // The greeting frame is identical on every connection; build it
        // once and share it with the dialers.
        let greeting: Arc<Vec<u8>> = Arc::new(frame_bytes(&identities));
        let shared = Arc::new(Shared {
            alive: AtomicBool::new(true),
            dynamic: Mutex::new(HashMap::new()),
            socks: Mutex::new(HashMap::new()),
            threads: Mutex::new(Vec::new()),
            live_threads: AtomicU64::new(0),
            stats: TransportStats::default(),
            next_conn_id: AtomicU64::new(0),
        });
        let mut peer_queues = HashMap::new();
        for (peer, addr) in peers {
            let (tx, rx) = mpsc::sync_channel::<FrameBuf>(OUTBOUND_QUEUE);
            peer_queues.insert(peer, tx);
            let shared2 = Arc::clone(&shared);
            let inbound2 = inbound.clone();
            let greeting2 = Arc::clone(&greeting);
            spawn_worker(&shared, format!("pbft-dial-{peer:?}"), move || {
                dialer_loop(&greeting2, addr, rx, inbound2, shared2)
            });
        }
        if let Some(listener) = listener {
            let shared2 = Arc::clone(&shared);
            let inbound2 = inbound.clone();
            spawn_worker(&shared, format!("pbft-accept-{me:?}"), move || {
                accept_loop(listener, inbound2, shared2)
            });
        }
        // Delayed frames (jitter, duplicates) re-enter routing on their
        // own worker, so the protocol thread's send never sleeps.
        let delay_tx = faults.as_ref().map(|_| {
            let (tx, rx) = mpsc::sync_channel::<DelayedFrame>(OUTBOUND_QUEUE);
            let shared2 = Arc::clone(&shared);
            let peers2 = peer_queues.clone();
            spawn_worker(&shared, format!("pbft-delay-{me:?}"), move || {
                delay_loop(rx, peers2, shared2)
            });
            tx
        });
        Transport {
            me,
            peers: peer_queues,
            shared,
            faults,
            delay_tx,
        }
    }

    /// Queues one frame toward `to`: a persistent peer queue when the
    /// topology lists one, otherwise a dynamic return route from a
    /// greeting. No route, a full queue, or a dead peer drops the frame.
    /// With a fault plane attached, the frame may instead be dropped,
    /// held back, or duplicated per the plane's verdict.
    pub fn send(&self, to: NodeId, frame: FrameBuf) {
        let Some(plane) = &self.faults else {
            return route_frame(&self.peers, &self.shared, to, frame);
        };
        match plane.decide(self.me, to) {
            SendVerdict::Drop => {
                self.shared
                    .stats
                    .injected_dropped
                    .fetch_add(1, Ordering::Relaxed);
            }
            SendVerdict::Deliver {
                delay_us,
                duplicate_us,
            } => {
                if let Some(dup_us) = duplicate_us {
                    self.shared
                        .stats
                        .injected_duplicated
                        .fetch_add(1, Ordering::Relaxed);
                    self.send_after(to, Arc::clone(&frame), dup_us);
                }
                self.send_after(to, frame, delay_us);
            }
        }
    }

    /// Routes a frame now (`delay_us == 0`) or hands it to the delay
    /// worker. A full delay queue degrades to loss, like every other
    /// overloaded queue in the transport.
    fn send_after(&self, to: NodeId, frame: FrameBuf, delay_us: u64) {
        if delay_us == 0 {
            return route_frame(&self.peers, &self.shared, to, frame);
        }
        self.shared
            .stats
            .injected_delayed
            .fetch_add(1, Ordering::Relaxed);
        let delayed = DelayedFrame {
            due: Instant::now() + Duration::from_micros(delay_us),
            to,
            frame,
        };
        let dropped = match &self.delay_tx {
            Some(tx) => tx.try_send(delayed).is_err(),
            None => true,
        };
        if dropped {
            self.shared
                .stats
                .frames_dropped
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    /// This endpoint's identity.
    pub fn me(&self) -> NodeId {
        self.me
    }

    /// Live counter values.
    pub fn stats(&self) -> StatsSnapshot {
        self.shared.stats.snapshot()
    }

    /// Stops the transport: closes every socket (interrupting blocked
    /// reads), then *joins* every worker thread, so when this returns no
    /// transport thread is running and no socket is registered — a
    /// dialer mid-reconnect or a reader mid-registration cannot leak
    /// past it. Idempotent.
    pub fn shutdown(&self) {
        self.shared.alive.store(false, Ordering::SeqCst);
        for (_, sock) in self.shared.socks.lock().expect("socks lock").drain() {
            let _ = sock.shutdown(Shutdown::Both);
        }
        self.shared.dynamic.lock().expect("dynamic lock").clear();
        // Workers can still be spawning other workers (a dialer that just
        // connected spawns its reader), so join in passes until one finds
        // no new handles. Each pass re-drains sockets registered during
        // the previous joins so their readers unblock. Self-join cannot
        // happen (shutdown is only called from owner threads), but guard
        // anyway.
        let me = std::thread::current().id();
        loop {
            let batch: Vec<_> =
                std::mem::take(&mut *self.shared.threads.lock().expect("threads lock"));
            if batch.is_empty() {
                break;
            }
            for handle in batch {
                if handle.thread().id() != me {
                    let _ = handle.join();
                }
            }
            for (_, sock) in self.shared.socks.lock().expect("socks lock").drain() {
                let _ = sock.shutdown(Shutdown::Both);
            }
        }
    }

    /// Residual state after shutdown, for leak regression tests:
    /// `(live worker threads, registered sockets, dynamic routes)`.
    pub fn residual_state(&self) -> (u64, usize, usize) {
        (
            self.shared.live_threads.load(Ordering::SeqCst),
            self.shared.socks.lock().expect("socks lock").len(),
            self.shared.dynamic.lock().expect("dynamic lock").len(),
        )
    }
}

impl Drop for Transport {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn enqueue(queue: &SyncSender<FrameBuf>, frame: FrameBuf) -> bool {
    match queue.try_send(frame) {
        Ok(()) => true,
        Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => false,
    }
}

/// The fault-free routing step: peer queue or dynamic return route,
/// counting sent/dropped. Shared by the direct send path and the delay
/// worker (a delayed frame re-enters here when its deadline passes).
fn route_frame(
    peers: &HashMap<NodeId, SyncSender<FrameBuf>>,
    shared: &Shared,
    to: NodeId,
    frame: FrameBuf,
) {
    let sent = if let Some(queue) = peers.get(&to) {
        enqueue(queue, frame)
    } else {
        let dynamic = shared.dynamic.lock().expect("dynamic lock");
        match dynamic.get(&to) {
            Some(route) => enqueue(&route.queue, frame),
            None => false,
        }
    };
    let counter = if sent {
        &shared.stats.frames_sent
    } else {
        &shared.stats.frames_dropped
    };
    counter.fetch_add(1, Ordering::Relaxed);
}

/// A frame held back by the injection shim, due for routing at `due`.
struct DelayedFrame {
    due: Instant,
    to: NodeId,
    frame: FrameBuf,
}

/// Heap entry ordering for the delay worker: earliest deadline first,
/// FIFO within a deadline (the sequence breaks ties).
struct HeldFrame {
    seq: u64,
    inner: DelayedFrame,
}

impl PartialEq for HeldFrame {
    fn eq(&self, other: &Self) -> bool {
        self.inner.due == other.inner.due && self.seq == other.seq
    }
}
impl Eq for HeldFrame {}
impl PartialOrd for HeldFrame {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeldFrame {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest due.
        (other.inner.due, other.seq).cmp(&(self.inner.due, self.seq))
    }
}

/// The delay worker: holds frames until their deadline, then routes them
/// normally. Frames sent later with no delay overtake held ones — that
/// reordering is deliberate (it is what jitter does to UDP and to
/// multi-path networks, and what the simulator's channel models).
fn delay_loop(
    rx: Receiver<DelayedFrame>,
    peers: HashMap<NodeId, SyncSender<FrameBuf>>,
    shared: Arc<Shared>,
) {
    let mut heap: BinaryHeap<HeldFrame> = BinaryHeap::new();
    let mut seq = 0u64;
    while shared.is_alive() {
        let now = Instant::now();
        while heap.peek().is_some_and(|h| h.inner.due <= now) {
            let held = heap.pop().expect("peeked");
            route_frame(&peers, &shared, held.inner.to, held.inner.frame);
        }
        let wait = heap
            .peek()
            .map(|h| h.inner.due.saturating_duration_since(now))
            .unwrap_or(Duration::from_millis(100))
            .min(Duration::from_millis(100));
        match rx.recv_timeout(wait) {
            Ok(delayed) => {
                heap.push(HeldFrame {
                    seq,
                    inner: delayed,
                });
                seq += 1;
            }
            Err(RecvTimeoutError::Timeout) => {}
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
}

/// Persistent dialer: connect (with backoff), greet, then pump the
/// outbound queue; a reader thread per connection feeds `inbound`.
fn dialer_loop(
    greeting: &[u8],
    addr: SocketAddr,
    rx: Receiver<FrameBuf>,
    inbound: Sender<Vec<u8>>,
    shared: Arc<Shared>,
) {
    // Jitter seeded per dialer from wall-clock entropy: decorrelated
    // across endpoints and peers, so a healed partition's reconnect wave
    // spreads out instead of arriving in lockstep.
    let entropy = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let token = shared.next_conn_id.fetch_add(1, Ordering::Relaxed);
    let mut rng = StdRng::seed_from_u64(entropy ^ ((addr.port() as u64) << 48) ^ token);
    let mut attempt = 0u32;
    while shared.is_alive() {
        let Ok(mut stream) = TcpStream::connect_timeout(&addr, Duration::from_millis(500)) else {
            // Interruptible backoff sleep: check the shutdown flag and
            // drain queued frames so senders never see a stale full
            // queue from a long outage. The drained frames are losses
            // and count as such.
            let backoff = backoff_delay(attempt, &mut rng);
            let waited = std::time::Instant::now();
            while waited.elapsed() < backoff {
                if !shared.is_alive() {
                    return;
                }
                while rx.try_recv().is_ok() {
                    shared.stats.frames_dropped.fetch_add(1, Ordering::Relaxed);
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            attempt = attempt.saturating_add(1);
            continue;
        };
        attempt = 0;
        // Connect can race shutdown: the flag may have flipped while we
        // were inside connect_timeout. Bail before wiring anything up.
        if !shared.is_alive() {
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
        shared.stats.connects.fetch_add(1, Ordering::Relaxed);
        let _ = stream.set_nodelay(true);
        let token = shared.register_sock(&stream);
        // Reader side of this connection (replies from the peer).
        if let Ok(read_half) = stream.try_clone() {
            let inbound2 = inbound.clone();
            let shared2 = Arc::clone(&shared);
            spawn_worker(&shared, "pbft-read".into(), move || {
                reader_loop(read_half, inbound2, shared2, None)
            });
        }
        if stream.write_all(greeting).is_ok() {
            pump_frames(stream, &rx, &shared);
        }
        // Connection died; release its fd and loop back to reconnect.
        shared.deregister_sock(token);
    }
}

/// Pumps queued frames onto the socket until the socket, the queue, or
/// the transport dies. Shuts the socket down on exit so the paired
/// reader unblocks. Shared by dialed connections and accepted-side
/// return routes.
///
/// Frames that queued up while the previous write was in flight are
/// coalesced into one `write_all`: under load the per-frame syscall is
/// what saturates a core, and batches of protocol messages (a
/// pre-prepare plus the prepares and commits behind it) routinely sit
/// in the queue together. [`COALESCE_BYTES`] bounds the staging buffer;
/// anything beyond it just waits for the next write.
fn pump_frames(mut stream: TcpStream, rx: &Receiver<FrameBuf>, shared: &Shared) {
    const COALESCE_BYTES: usize = 60 * 1024;
    let mut buf: Vec<u8> = Vec::with_capacity(COALESCE_BYTES);
    loop {
        match rx.recv_timeout(Duration::from_millis(100)) {
            Ok(frame) => {
                buf.clear();
                buf.extend_from_slice(&frame);
                while buf.len() < COALESCE_BYTES {
                    match rx.try_recv() {
                        Ok(next) => buf.extend_from_slice(&next),
                        Err(_) => break,
                    }
                }
                if stream.write_all(&buf).is_err() {
                    break;
                }
            }
            Err(RecvTimeoutError::Timeout) => {
                if !shared.is_alive() {
                    break;
                }
            }
            Err(RecvTimeoutError::Disconnected) => break,
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
}

/// Accept loop: non-blocking accept so shutdown can stop it.
fn accept_loop(listener: TcpListener, inbound: Sender<Vec<u8>>, shared: Arc<Shared>) {
    listener
        .set_nonblocking(true)
        .expect("nonblocking listener");
    while shared.is_alive() {
        match listener.accept() {
            Ok((stream, _)) => {
                shared.stats.accepts.fetch_add(1, Ordering::Relaxed);
                let _ = stream.set_nodelay(true);
                let _ = stream.set_nonblocking(false);
                let inbound2 = inbound.clone();
                let shared2 = Arc::clone(&shared);
                spawn_worker(&shared, "pbft-accepted".into(), move || {
                    accepted_conn(stream, inbound2, shared2)
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => {
                // Transient accept failures (EMFILE, ECONNABORTED, ...)
                // must not kill the accept thread for the life of the
                // process — back off briefly and keep accepting.
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
}

/// An accepted connection: read the greeting, register a return route,
/// then forward payloads. The route is deregistered when the connection
/// dies (unless a newer connection already replaced it).
fn accepted_conn(stream: TcpStream, inbound: Sender<Vec<u8>>, shared: Arc<Shared>) {
    let conn_id = shared.register_sock(&stream);
    let mut registered: Vec<NodeId> = Vec::new();
    // Writer half: a bounded queue drained onto this socket, installed
    // as the return route once the greeting names the peer.
    let (tx, rx) = mpsc::sync_channel::<FrameBuf>(OUTBOUND_QUEUE);
    if let Ok(write_half) = stream.try_clone() {
        let shared2 = Arc::clone(&shared);
        spawn_worker(&shared, "pbft-return-writer".into(), move || {
            pump_frames(write_half, &rx, &shared2)
        });
    }
    reader_loop(
        stream,
        inbound,
        Arc::clone(&shared),
        Some(GreetingHook {
            conn_id,
            queue: tx,
            registered: &mut registered,
        }),
    );
    let mut dynamic = shared.dynamic.lock().expect("dynamic lock");
    for peer in registered {
        if dynamic.get(&peer).map(|r| r.conn_id) == Some(conn_id) {
            dynamic.remove(&peer);
        }
    }
    drop(dynamic);
    shared.deregister_sock(conn_id);
}

/// Greeting handling for accepted connections: the first payload names
/// the dialer's identity (or identities — a multiplexed client greets
/// as every logical client it drives) and installs the return routes.
struct GreetingHook<'a> {
    conn_id: u64,
    queue: SyncSender<FrameBuf>,
    registered: &'a mut Vec<NodeId>,
}

/// Reads frames off a socket until it dies. With a [`GreetingHook`], the
/// first payload is consumed as a [`NodeId`] greeting; every subsequent
/// payload goes to `inbound`.
fn reader_loop(
    mut stream: TcpStream,
    inbound: Sender<Vec<u8>>,
    shared: Arc<Shared>,
    mut hook: Option<GreetingHook<'_>>,
) {
    let mut decoder = FrameDecoder::new();
    let mut buf = [0u8; 64 * 1024];
    'conn: loop {
        if !shared.is_alive() {
            break;
        }
        let n = match stream.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        decoder.extend(&buf[..n]);
        loop {
            match decoder.next_payload() {
                Ok(Some(payload)) => {
                    if let Some(h) = hook.take() {
                        // Greeting frame: identify the dialer.
                        let mut slice = payload.as_slice();
                        match <Vec<NodeId> as bft_types::wire::Wire>::decode(&mut slice) {
                            Ok(ids) if slice.is_empty() && !ids.is_empty() => {
                                let mut dynamic = shared.dynamic.lock().expect("dynamic lock");
                                // Checked under the lock: either this
                                // insert happens before shutdown's clear
                                // (which then removes it), or the flag is
                                // already visible and we drop the
                                // connection instead of re-registering a
                                // route after `stop()`.
                                if !shared.is_alive() {
                                    break 'conn;
                                }
                                for &peer in &ids {
                                    dynamic.insert(
                                        peer,
                                        DynRoute {
                                            conn_id: h.conn_id,
                                            queue: h.queue.clone(),
                                        },
                                    );
                                }
                                *h.registered = ids;
                            }
                            _ => {
                                shared.stats.framing_errors.fetch_add(1, Ordering::Relaxed);
                                break 'conn;
                            }
                        }
                        continue;
                    }
                    shared.stats.frames_received.fetch_add(1, Ordering::Relaxed);
                    if inbound.send(payload).is_err() {
                        break 'conn; // Node loop gone.
                    }
                }
                Ok(None) => break,
                Err(_) => {
                    // Corruption: a length-prefixed stream cannot resync;
                    // drop the connection and let the dialer reconnect.
                    shared.stats.framing_errors.fetch_add(1, Ordering::Relaxed);
                    break 'conn;
                }
            }
        }
    }
    let _ = stream.shutdown(Shutdown::Both);
}

#[cfg(test)]
mod tests {
    use super::*;
    use bft_types::{ClientId, ReplicaId};

    fn recv_payload(rx: &Receiver<Vec<u8>>) -> Vec<u8> {
        rx.recv_timeout(Duration::from_secs(5)).expect("payload")
    }

    #[test]
    fn two_endpoints_exchange_frames() {
        let l0 = TcpListener::bind("127.0.0.1:0").unwrap();
        let l1 = TcpListener::bind("127.0.0.1:0").unwrap();
        let (a0, a1) = (l0.local_addr().unwrap(), l1.local_addr().unwrap());
        let r0 = NodeId::Replica(ReplicaId(0));
        let r1 = NodeId::Replica(ReplicaId(1));
        let (tx0, rx0) = mpsc::channel();
        let (tx1, rx1) = mpsc::channel();
        let t0 = Transport::start(r0, Some(l0), vec![(r1, a1)], tx0);
        let t1 = Transport::start(r1, Some(l1), vec![(r0, a0)], tx1);

        // Payloads are arbitrary bytes at the transport layer.
        let hello = Arc::new(frame_bytes(&42u64));
        // Queue before/while the dialer connects: the queue buffers.
        t0.send(r1, Arc::clone(&hello));
        let got = recv_payload(&rx1);
        let mut slice = got.as_slice();
        assert_eq!(bft_types::wire::Wire::decode(&mut slice), Ok(42u64));

        t1.send(r0, Arc::new(frame_bytes(&7u64)));
        let got = recv_payload(&rx0);
        let mut slice = got.as_slice();
        assert_eq!(bft_types::wire::Wire::decode(&mut slice), Ok(7u64));

        t0.shutdown();
        t1.shutdown();
    }

    #[test]
    fn accepted_connection_registers_return_route() {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = l.local_addr().unwrap();
        let server = NodeId::Replica(ReplicaId(0));
        let client = NodeId::Client(ClientId(3));
        let (stx, srx) = mpsc::channel();
        let (ctx, crx) = mpsc::channel();
        let ts = Transport::start(server, Some(l), vec![], stx);
        let tc = Transport::start(client, None, vec![(server, addr)], ctx);

        // Client → server establishes the connection (greeting + frame).
        tc.send(server, Arc::new(frame_bytes(&1u64)));
        let _ = recv_payload(&srx);
        // Server → client goes over the dynamic return route.
        ts.send(client, Arc::new(frame_bytes(&2u64)));
        let got = recv_payload(&crx);
        let mut slice = got.as_slice();
        assert_eq!(bft_types::wire::Wire::decode(&mut slice), Ok(2u64));

        ts.shutdown();
        tc.shutdown();
    }

    #[test]
    fn send_without_route_drops() {
        let (tx, _rx) = mpsc::channel();
        let t = Transport::start(NodeId::Client(ClientId(0)), None, vec![], tx);
        t.send(NodeId::Client(ClientId(9)), Arc::new(vec![1, 2, 3]));
        assert_eq!(t.stats().frames_dropped, 1);
        t.shutdown();
    }

    /// Regression for the shutdown race: `stop()` used to drain `socks`
    /// and clear `dynamic` while dialers could still reconnect and
    /// readers could still register routes, leaking threads and sockets.
    /// After `shutdown()` returns, every worker thread must have exited
    /// and no socket or route may remain registered.
    #[test]
    fn shutdown_leaves_no_threads_or_sockets() {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = l.local_addr().unwrap();
        let server = NodeId::Replica(ReplicaId(0));
        let client = NodeId::Client(ClientId(5));
        // A dead peer address keeps one dialer mid-backoff/reconnect for
        // the whole test — the thread most likely to race `stop()`.
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        let dead_addr = probe.local_addr().unwrap();
        drop(probe);
        let (stx, srx) = mpsc::channel();
        let (ctx, _crx) = mpsc::channel();
        let ts = Transport::start(
            server,
            Some(l),
            vec![(NodeId::Replica(ReplicaId(9)), dead_addr)],
            stx,
        );
        let tc = Transport::start(client, None, vec![(server, addr)], ctx);
        // Establish the accepted connection + dynamic return route.
        tc.send(server, Arc::new(frame_bytes(&1u64)));
        let _ = recv_payload(&srx);

        ts.shutdown();
        assert_eq!(
            ts.residual_state(),
            (0, 0, 0),
            "server: no threads, sockets, or routes after stop()"
        );
        tc.shutdown();
        assert_eq!(
            tc.residual_state(),
            (0, 0, 0),
            "client: no threads, sockets, or routes after stop()"
        );
        // Idempotent: a second stop (e.g. from Drop) is a no-op.
        ts.shutdown();
        assert_eq!(ts.residual_state(), (0, 0, 0));
    }

    #[test]
    fn backoff_schedule_is_bounded_with_jitter() {
        // Caps double from BACKOFF_INITIAL to BACKOFF_MAX and saturate.
        assert_eq!(backoff_cap(0), BACKOFF_INITIAL);
        assert_eq!(backoff_cap(1), BACKOFF_INITIAL * 2);
        assert_eq!(backoff_cap(7), BACKOFF_MAX); // 20ms * 128 = 2.56s, capped.
        assert_eq!(backoff_cap(30), BACKOFF_MAX); // Shift saturates too.
        let mut rng = StdRng::seed_from_u64(42);
        for attempt in 0..20 {
            let cap = backoff_cap(attempt);
            for _ in 0..50 {
                let d = backoff_delay(attempt, &mut rng);
                // Equal jitter: within [cap/2, cap], never zero, never
                // above the ceiling.
                assert!(d >= cap / 2, "attempt {attempt}: {d:?} < {:?}", cap / 2);
                assert!(d <= cap, "attempt {attempt}: {d:?} > {cap:?}");
                assert!(d <= BACKOFF_MAX);
            }
        }
        // The jitter actually varies: two streams disagree somewhere.
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert!(
            (0..10).any(|_| backoff_delay(5, &mut a) != backoff_delay(5, &mut b)),
            "jittered delays must differ between rng streams"
        );
    }

    #[test]
    fn injection_shim_drops_and_counts() {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = l.local_addr().unwrap();
        let r0 = NodeId::Replica(ReplicaId(0));
        let r1 = NodeId::Replica(ReplicaId(1));
        let (stx, srx) = mpsc::channel();
        let (ctx, _crx) = mpsc::channel();
        let ts = Transport::start(r1, Some(l), vec![], stx);
        let plane = crate::inject::FaultPlane::new(9);
        let tc =
            Transport::start_faulted(vec![r0], None, vec![(r1, addr)], ctx, Some(plane.clone()));

        // Clean plane: frames flow.
        tc.send(r1, Arc::new(frame_bytes(&1u64)));
        let _ = recv_payload(&srx);

        // Total loss on r0 -> r1: nothing arrives, the drops are counted
        // on the transport and tallied per link on the plane.
        plane.set_link(
            r0,
            r1,
            bft_net::LinkProfile {
                drop_prob: 1.0,
                duplicate_prob: 0.0,
                jitter_us: 0,
                extra_latency_us: 0,
            },
        );
        for _ in 0..10 {
            tc.send(r1, Arc::new(frame_bytes(&2u64)));
        }
        assert!(srx.recv_timeout(Duration::from_millis(200)).is_err());
        assert_eq!(tc.stats().injected_dropped, 10);
        assert_eq!(plane.link_tally(r0, r1).dropped, 10);

        // Partition blocks without a profile; heal restores.
        plane.clear_link(r0, r1);
        plane.partition(&[vec![r0], vec![r1]]);
        tc.send(r1, Arc::new(frame_bytes(&3u64)));
        assert!(srx.recv_timeout(Duration::from_millis(200)).is_err());
        assert_eq!(tc.stats().injected_dropped, 11);
        plane.heal_partition();
        tc.send(r1, Arc::new(frame_bytes(&4u64)));
        let _ = recv_payload(&srx);

        ts.shutdown();
        tc.shutdown();
    }

    #[test]
    fn injection_shim_delays_and_duplicates() {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = l.local_addr().unwrap();
        let r0 = NodeId::Replica(ReplicaId(0));
        let r1 = NodeId::Replica(ReplicaId(1));
        let (stx, srx) = mpsc::channel();
        let (ctx, _crx) = mpsc::channel();
        let ts = Transport::start(r1, Some(l), vec![], stx);
        let plane = crate::inject::FaultPlane::new(10);
        let tc =
            Transport::start_faulted(vec![r0], None, vec![(r1, addr)], ctx, Some(plane.clone()));
        // Establish the connection before measuring latency.
        tc.send(r1, Arc::new(frame_bytes(&0u64)));
        let _ = recv_payload(&srx);

        // Every frame duplicated and held back ~200ms: two copies arrive,
        // neither immediately.
        plane.set_link(
            r0,
            r1,
            bft_net::LinkProfile {
                drop_prob: 0.0,
                duplicate_prob: 1.0,
                jitter_us: 1_000,
                extra_latency_us: 200_000,
            },
        );
        let started = std::time::Instant::now();
        tc.send(r1, Arc::new(frame_bytes(&5u64)));
        let first = recv_payload(&srx);
        assert!(
            started.elapsed() >= Duration::from_millis(150),
            "frame must be held back by the injected latency"
        );
        let second = recv_payload(&srx);
        assert_eq!(first, second, "the duplicate is a bit-identical copy");
        let stats = tc.stats();
        assert_eq!(stats.injected_duplicated, 1);
        assert_eq!(stats.injected_delayed, 2, "original + duplicate both held");
        let tally = plane.link_tally(r0, r1);
        assert_eq!((tally.delayed, tally.duplicated), (1, 1));

        ts.shutdown();
        tc.shutdown();
    }

    #[test]
    fn dialer_backs_off_until_server_appears() {
        // Learn a free port, then free it: the dialer starts against a
        // dead address and must connect once a listener appears there.
        let probe = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap();
        drop(probe);
        let server = NodeId::Replica(ReplicaId(0));
        let client = NodeId::Client(ClientId(1));
        let (ctx, _crx) = mpsc::channel();
        let tc = Transport::start(client, None, vec![(server, addr)], ctx);
        // Let a few connect attempts fail and back off.
        std::thread::sleep(Duration::from_millis(150));
        let l = TcpListener::bind(addr).expect("bind the probed port");
        let (stx, srx) = mpsc::channel();
        let ts = Transport::start(server, Some(l), vec![], stx);
        // Frames sent during the outage drop; eventually one arrives.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        let mut delivered = false;
        while std::time::Instant::now() < deadline {
            tc.send(server, Arc::new(frame_bytes(&99u64)));
            if srx.recv_timeout(Duration::from_millis(100)).is_ok() {
                delivered = true;
                break;
            }
        }
        assert!(delivered, "reconnect with backoff restores delivery");
        ts.shutdown();
        tc.shutdown();
    }
}
