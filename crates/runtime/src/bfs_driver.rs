//! Drives the BFS Andrew benchmark (§8.6) against the live runtime.
//!
//! Three ways to run the same [`bfs::ScriptedOp`] script, all producing
//! the same per-phase report so the `andrew` benchmark can put them in
//! one table:
//!
//! * [`run_andrew_mux`] — N logical clients over the multiplexed
//!   [`crate::client::run_mux_sources`] driver against a replicated
//!   cluster, pulling ops from one shared [`bfs::ScriptScheduler`] so
//!   dependency order and phase barriers hold across clients. Read-only
//!   ops ride the §5.1.3 quorum-reply fast path unless disabled.
//! * [`run_andrew_unreplicated_tcp`] — the paper's NFS-std analogue: one
//!   unreplicated server ([`UnreplicatedServer`]) speaking plain
//!   length-prefixed frames over TCP, N closed-loop connections sharing
//!   the same scheduler. Same syscalls, same wire hops, no protocol.
//! * [`run_andrew_direct`] — in-process sequential execution; measures
//!   pure service cost with zero wire overhead (reported for
//!   transparency, not as the paper's baseline).

use crate::client::{run_mux_sources, NextOp, OpSource};
use crate::config::Topology;
use bfs::{BfsService, NfsReply, Phase, ScriptScheduler, ScriptedOp, PHASES};
use bft_core::CompletedOp;
use bft_statemachine::Service;
use bft_types::{ClientId, Requester};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Per-phase results of one Andrew run.
#[derive(Debug, Clone)]
pub struct PhaseReport {
    /// Display name of the phase (matches the thesis's tables).
    pub phase: &'static str,
    /// Operations completed in this phase.
    pub ops: u64,
    /// Wall clock from first invocation to last completion of the phase.
    pub wall: Duration,
    /// Per-operation latency in microseconds, completion order.
    pub latencies_us: Vec<u64>,
}

/// One full Andrew run in any configuration.
#[derive(Debug, Clone)]
pub struct AndrewRun {
    /// Per-phase breakdown, in phase order.
    pub phases: Vec<PhaseReport>,
    /// Wall clock for the whole script.
    pub total_wall: Duration,
    /// Total operations completed.
    pub completed: u64,
    /// Operations that needed at least one client retransmission
    /// (always 0 for the unreplicated configurations).
    pub retransmitted: u64,
}

impl AndrewRun {
    /// All latencies across phases, sorted ascending.
    pub fn sorted_latencies_us(&self) -> Vec<u64> {
        let mut all: Vec<u64> = self
            .phases
            .iter()
            .flat_map(|p| p.latencies_us.iter().copied())
            .collect();
        all.sort_unstable();
        all
    }

    /// Aggregate throughput over the whole run.
    pub fn ops_per_sec(&self) -> f64 {
        if self.total_wall.is_zero() {
            return 0.0;
        }
        self.completed as f64 / self.total_wall.as_secs_f64()
    }
}

/// Accumulates per-phase first-invoke/last-complete instants and
/// latencies. Phases are barriers in the scheduler, so "first invoke"
/// and "last complete" bracket the phase exactly.
#[derive(Default)]
struct Tally {
    started: [Option<Instant>; PHASES.len()],
    ended: [Option<Instant>; PHASES.len()],
    latencies_us: Vec<Vec<u64>>,
}

impl Tally {
    fn new() -> Tally {
        Tally {
            latencies_us: vec![Vec::new(); PHASES.len()],
            ..Tally::default()
        }
    }

    fn index(phase: Phase) -> usize {
        PHASES
            .iter()
            .position(|p| *p == phase)
            .expect("known phase")
    }

    fn issue(&mut self, phase: Phase, now: Instant) {
        let i = Self::index(phase);
        self.started[i].get_or_insert(now);
    }

    fn finish(&mut self, phase: Phase, latency: Duration, now: Instant) {
        let i = Self::index(phase);
        self.ended[i] = Some(now);
        self.latencies_us[i].push(latency.as_micros() as u64);
    }

    fn into_run(self, fallback_wall: Duration, retransmitted: u64) -> AndrewRun {
        // Total wall is first invocation to last completion — the span
        // the paper's tables measure — so transport setup and teardown
        // outside the benchmark do not pollute the overhead ratios.
        let first = self.started.iter().flatten().min().copied();
        let last = self.ended.iter().flatten().max().copied();
        let total_wall = match (first, last) {
            (Some(s), Some(e)) => e.duration_since(s),
            _ => fallback_wall,
        };
        let mut phases = Vec::with_capacity(PHASES.len());
        let mut completed = 0u64;
        for (i, phase) in PHASES.iter().enumerate() {
            let ops = self.latencies_us[i].len() as u64;
            completed += ops;
            let wall = match (self.started[i], self.ended[i]) {
                (Some(s), Some(e)) => e.duration_since(s),
                _ => Duration::ZERO,
            };
            phases.push(PhaseReport {
                phase: phase.name(),
                ops,
                wall,
                latencies_us: self.latencies_us[i].clone(),
            });
        }
        AndrewRun {
            phases,
            total_wall,
            completed,
            retransmitted,
        }
    }
}

/// [`OpSource`] adapter: every idle logical client pulls the next ready
/// op from one shared [`ScriptScheduler`].
struct AndrewSource {
    sched: ScriptScheduler,
    tally: Tally,
    /// When false, read-only script ops are submitted as normal writes —
    /// the "fast paths disabled" benchmark configuration.
    mark_read_only: bool,
}

impl OpSource for AndrewSource {
    fn next(&mut self, _slot: usize, now: Instant) -> NextOp {
        if self.sched.is_finished() {
            return NextOp::Finished;
        }
        match self.sched.next_ready() {
            Some((idx, op, read_only)) => {
                self.tally.issue(self.sched.phase_of(idx), now);
                NextOp::Invoke {
                    op: op.encode(),
                    read_only: read_only && self.mark_read_only,
                    tag: idx as u64,
                }
            }
            None => NextOp::Wait,
        }
    }

    fn done(&mut self, _slot: usize, tag: u64, op: &CompletedOp, latency: Duration) -> Instant {
        let idx = tag as usize;
        let reply = NfsReply::decode(&op.result).expect("well-formed BFS reply");
        self.sched.complete(idx, &reply);
        self.tally
            .finish(self.sched.phase_of(idx), latency, Instant::now());
        Instant::now()
    }

    fn finished(&self) -> bool {
        self.sched.is_finished()
    }
}

/// Builds the scheduler in RPC-replay or application mode.
fn scheduler(script: Vec<ScriptedOp>, app_work: bool) -> ScriptScheduler {
    if app_work {
        ScriptScheduler::with_app_work(script)
    } else {
        ScriptScheduler::new(script)
    }
}

/// Runs the Andrew script against a replicated cluster with `ids.len()`
/// concurrent logical clients on the multiplexed driver. Read-only
/// script ops use the §5.1.3 fast path unless `mark_read_only` is
/// false; `app_work` charges the benchmark's client-side compute on
/// every completion (see [`bfs::app_work`]).
///
/// # Panics
///
/// Panics if the script does not complete before `deadline`, or if any
/// op returns an NFS error (the script is constructed to succeed).
pub fn run_andrew_mux(
    ids: &[ClientId],
    topo: &Topology,
    script: Vec<ScriptedOp>,
    mark_read_only: bool,
    app_work: bool,
    deadline: Duration,
) -> AndrewRun {
    let total = script.len();
    let mut source = AndrewSource {
        sched: scheduler(script, app_work),
        tally: Tally::new(),
        mark_read_only,
    };
    let started = Instant::now();
    let reports = run_mux_sources(ids, topo, &mut source, None, deadline);
    let total_wall = started.elapsed();
    assert!(
        source.sched.is_finished(),
        "Andrew run incomplete at the {deadline:?} deadline: {}/{total} ops",
        source.sched.completed(),
    );
    let retransmitted = reports.iter().map(|r| r.retransmitted).sum();
    source.tally.into_run(total_wall, retransmitted)
}

// ---------------------------------------------------------------------
// Unreplicated-over-TCP baseline (the paper's NFS-std analogue).
// ---------------------------------------------------------------------

/// Wire format of the unreplicated baseline: `u32` LE body length, `u64`
/// LE tag, then the encoded op/reply. No MACs, no protocol — the
/// baseline is *supposed* to be cheaper than BFS on everything but the
/// syscalls and the socket hops.
fn write_frame(w: &mut impl Write, tag: u64, body: &[u8]) -> std::io::Result<()> {
    let len = (8 + body.len()) as u32;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(&tag.to_le_bytes())?;
    w.write_all(body)?;
    w.flush()
}

fn read_frame(r: &mut impl Read) -> std::io::Result<(u64, Vec<u8>)> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    if !(8..=1 << 24).contains(&len) {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "bad frame length",
        ));
    }
    let mut tag = [0u8; 8];
    r.read_exact(&mut tag)?;
    let mut body = vec![0u8; len - 8];
    r.read_exact(&mut body)?;
    Ok((u64::from_le_bytes(tag), body))
}

/// A single unreplicated [`BfsService`] served over TCP: the baseline
/// file server the replicated configurations are measured against.
pub struct UnreplicatedServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl UnreplicatedServer {
    /// Binds an ephemeral localhost port and starts serving.
    pub fn start(buckets: u64) -> UnreplicatedServer {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind baseline server");
        let addr = listener.local_addr().expect("local addr");
        listener
            .set_nonblocking(true)
            .expect("nonblocking listener");
        let shutdown = Arc::new(AtomicBool::new(false));
        // Service plus its op timestamp: the baseline still feeds the
        // service a monotonically increasing nondet clock, like a
        // primary would, so mtimes advance the same way.
        let service = Arc::new(Mutex::new((BfsService::new_realtime(buckets), 0u64)));
        let stop = Arc::clone(&shutdown);
        let accept = std::thread::spawn(move || {
            let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        stream.set_nodelay(true).ok();
                        let service = Arc::clone(&service);
                        conns.push(std::thread::spawn(move || serve_conn(stream, &service)));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
            for c in conns {
                c.join().ok();
            }
        });
        UnreplicatedServer {
            addr,
            shutdown,
            accept: Some(accept),
        }
    }

    /// The server's listen address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for UnreplicatedServer {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(h) = self.accept.take() {
            h.join().ok();
        }
    }
}

/// One baseline connection: read an op frame, execute, reply. Exits on
/// any socket error (client closed).
fn serve_conn(stream: TcpStream, service: &Mutex<(BfsService, u64)>) {
    let mut reader = std::io::BufReader::new(stream.try_clone().expect("clone stream"));
    let mut writer = std::io::BufWriter::new(stream);
    let client = Requester::Client(ClientId(0));
    loop {
        let Ok((tag, body)) = read_frame(&mut reader) else {
            return;
        };
        let reply = {
            let mut guard = service.lock().expect("service lock");
            let (svc, t) = &mut *guard;
            *t += 1;
            let nondet = t.to_le_bytes();
            svc.execute(client, &body, &nondet)
        };
        if write_frame(&mut writer, tag, &reply).is_err() {
            return;
        }
    }
}

/// Runs the Andrew script against an [`UnreplicatedServer`] with
/// `conns` closed-loop TCP connections sharing one scheduler — the same
/// concurrency structure as [`run_andrew_mux`], minus replication.
///
/// # Panics
///
/// Panics if the script does not complete before `deadline` or a
/// connection dies mid-run.
pub fn run_andrew_unreplicated_tcp(
    addr: SocketAddr,
    conns: usize,
    script: Vec<ScriptedOp>,
    app_work: bool,
    deadline: Duration,
) -> AndrewRun {
    let total = script.len();
    let shared = Mutex::new((scheduler(script, app_work), Tally::new()));
    let started = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..conns.max(1) {
            scope.spawn(|| {
                let stream = TcpStream::connect(addr).expect("connect baseline server");
                stream.set_nodelay(true).ok();
                let mut reader = std::io::BufReader::new(stream.try_clone().expect("clone stream"));
                let mut writer = std::io::BufWriter::new(stream);
                loop {
                    assert!(
                        started.elapsed() < deadline,
                        "baseline run incomplete at the {deadline:?} deadline"
                    );
                    let issued = {
                        let mut guard = shared.lock().expect("scheduler lock");
                        let (sched, tally) = &mut *guard;
                        if sched.is_finished() {
                            return;
                        }
                        match sched.next_ready() {
                            Some((idx, op, _read_only)) => {
                                let now = Instant::now();
                                tally.issue(sched.phase_of(idx), now);
                                Some((idx, op.encode(), now))
                            }
                            None => None,
                        }
                    };
                    let Some((idx, op, invoked)) = issued else {
                        // Dependencies in flight on other connections.
                        std::thread::sleep(Duration::from_micros(200));
                        continue;
                    };
                    write_frame(&mut writer, idx as u64, &op).expect("baseline send");
                    let (tag, body) = read_frame(&mut reader).expect("baseline recv");
                    assert_eq!(tag, idx as u64, "baseline reply out of order");
                    let latency = invoked.elapsed();
                    let reply = NfsReply::decode(&body).expect("well-formed baseline reply");
                    let mut guard = shared.lock().expect("scheduler lock");
                    let (sched, tally) = &mut *guard;
                    sched.complete(idx, &reply);
                    tally.finish(sched.phase_of(idx), latency, Instant::now());
                }
            });
        }
    });
    let total_wall = started.elapsed();
    let (sched, tally) = shared.into_inner().expect("scheduler lock");
    assert!(
        sched.is_finished(),
        "baseline run incomplete: {}/{total} ops",
        sched.completed(),
    );
    tally.into_run(total_wall, 0)
}

/// Runs the Andrew script sequentially against an in-process
/// [`BfsService`] — zero wire cost, the floor every other configuration
/// is compared to for transparency.
pub fn run_andrew_direct(buckets: u64, script: Vec<ScriptedOp>, app_work: bool) -> AndrewRun {
    let total = script.len();
    let mut service = BfsService::new_realtime(buckets);
    let mut sched = scheduler(script, app_work);
    let mut tally = Tally::new();
    let client = Requester::Client(ClientId(0));
    let mut t = 0u64;
    let started = Instant::now();
    while let Some((idx, op, _read_only)) = sched.next_ready() {
        let invoked = Instant::now();
        tally.issue(sched.phase_of(idx), invoked);
        t += 1;
        let reply_bytes = service.execute(client, &op.encode(), &t.to_le_bytes());
        let reply = NfsReply::decode(&reply_bytes).expect("well-formed reply");
        sched.complete(idx, &reply);
        tally.finish(sched.phase_of(idx), invoked.elapsed(), Instant::now());
    }
    let total_wall = started.elapsed();
    assert!(
        sched.is_finished(),
        "direct run incomplete: {}/{total} ops",
        sched.completed(),
    );
    tally.into_run(total_wall, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfs::{generate_script, AndrewConfig};

    #[test]
    fn unreplicated_tcp_baseline_completes_and_matches_direct_counts() {
        let script = generate_script(&AndrewConfig::tiny());
        let total = script.len() as u64;
        let server = UnreplicatedServer::start(8);
        let run = run_andrew_unreplicated_tcp(
            server.addr(),
            3,
            script.clone(),
            false,
            Duration::from_secs(30),
        );
        assert_eq!(run.completed, total);
        assert_eq!(run.retransmitted, 0);
        let direct = run_andrew_direct(8, script, true);
        assert_eq!(direct.completed, total);
        for (a, b) in run.phases.iter().zip(direct.phases.iter()) {
            assert_eq!(a.phase, b.phase);
            assert_eq!(a.ops, b.ops, "phase {} op count differs", a.phase);
        }
        assert!(run.sorted_latencies_us().len() == total as usize);
        assert!(run.ops_per_sec() > 0.0);
    }

    #[test]
    fn baseline_frames_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, 42, b"hello").expect("write");
        let (tag, body) = read_frame(&mut buf.as_slice()).expect("read");
        assert_eq!(tag, 42);
        assert_eq!(body, b"hello");
        // Truncated frame errors instead of blocking forever.
        assert!(read_frame(&mut buf[..6].as_ref()).is_err());
    }
}
