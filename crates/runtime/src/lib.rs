//! The real-network runtime: PBFT over TCP sockets.
//!
//! Castro & Liskov's headline claim is that BFT replication is
//! *practical* — a real library, real clients, real kernels, 3% slower
//! than unreplicated NFS. Everything below `bft-runtime` proves the
//! protocol inside a deterministic virtual-time simulator; this crate
//! takes the *same* state machines ([`bft_core::Replica`] and
//! [`bft_core::ClientProxy`], unchanged, driven through
//! [`bft_core::ReplicaDriver`]) and runs them over real sockets and a
//! real clock:
//!
//! * [`transport`] — a threaded `std::net` TCP transport: one listener
//!   per replica, persistent dialed connections with exponential
//!   reconnect backoff, per-peer bounded outbound queues (overflow drops
//!   the frame — exactly the loss semantics the protocol already
//!   tolerates), and the length-prefixed, CRC-checksummed framing from
//!   [`bft_types::framing`].
//! * [`clock`] — the [`bft_net::EventWheel`] timer wheel re-keyed from
//!   virtual microseconds to monotonic microseconds since process start;
//!   retransmission, status, and view-change timers run off the real
//!   clock with the same keyed single-shot semantics the simulator uses.
//! * [`node`] — the replica event loop (`pbft-node`): one protocol
//!   thread owns the replica; reader threads feed it checksum-verified
//!   frame payloads; timers and control requests interleave with
//!   deliveries.
//! * [`client`] — the load generator (`pbft-client`): open- or
//!   closed-loop clients over the same transport, reusing the benchmark
//!   workload mix (writes with a read-only sprinkle).
//! * [`config`] — the cluster topology file shared by both binaries.
//! * [`loopback`] — [`loopback::LoopbackCluster`]: an f=1 cluster on
//!   127.0.0.1 ephemeral ports inside one process, used by the
//!   integration tests and the `realnet` benchmark.
//! * [`inject`] — [`inject::FaultPlane`]: chaos-mode fault injection on
//!   the transport's send path (partitions, isolation, per-link
//!   loss/jitter/duplication), so the simulator's seeded chaos schedules
//!   drive real sockets (`chaos --realnet`).
//!
//! Authentication note: all nodes derive session-key material
//! deterministically from the topology's `key_seed`
//! ([`bft_core::ClusterKeys::generate`]). That makes a config file
//! sufficient to boot a cluster for development and testing; a hardened
//! deployment would provision per-node keys out of band.

pub mod bfs_driver;
pub mod client;
pub mod clock;
pub mod config;
pub mod inject;
pub mod loopback;
pub mod node;
pub mod pool;
pub mod transport;

pub use bfs_driver::{
    run_andrew_direct, run_andrew_mux, run_andrew_unreplicated_tcp, AndrewRun, PhaseReport,
    UnreplicatedServer,
};
pub use client::{
    run_client, run_client_with, run_mux_clients, run_mux_sources, run_workers, ClientHooks,
    ClientReport, LoadMode, NextOp, OpSource, Workload,
};
pub use clock::RtTimers;
pub use config::{ConfigError, ConfigErrorKind, ServiceKind, StorageKind, Topology};
pub use inject::{FaultPlane, LinkTally, SendVerdict, StormSignal};
pub use loopback::{ConvergeFailure, ConvergeTimeout, LoopbackCluster, ShardedLoopback};
pub use node::{
    spawn_counter_replica, spawn_counter_replica_faulted, spawn_service_replica,
    spawn_service_replica_faulted, NodeHandle, Snapshot,
};
pub use pool::MacPool;
pub use transport::{Transport, TransportStats};
