//! An in-process PBFT cluster on 127.0.0.1 ephemeral ports.
//!
//! [`LoopbackCluster`] spawns `3f + 1` replica nodes, each with its own
//! transport threads, talking real TCP through the loopback interface —
//! the smallest deployment that exercises every runtime layer (framing,
//! reconnect, real timers) without leaving the test process. Integration
//! tests drive it with [`crate::client::run_client`] workers and check
//! the same oracle the simulator's chaos campaigns use: identical
//! journals, exactly-once execution, liveness.

use crate::client::{run_client, run_workers, ClientReport, Workload};
use crate::config::Topology;
use crate::inject::FaultPlane;
use crate::node::{spawn_service_replica_faulted, NodeHandle, Snapshot};
use bft_types::{ClientId, ReplicaId};
use std::fmt;
use std::net::TcpListener;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A running loopback cluster.
pub struct LoopbackCluster {
    /// The topology all nodes and clients share.
    pub topo: Topology,
    nodes: Vec<Option<NodeHandle>>,
    /// Retained clones of every replica's listener. The listen socket
    /// never closes — a killed replica's port stays bound (the kernel
    /// backlog absorbs peers' reconnects during the dead window), so
    /// [`LoopbackCluster::restart`] can bring the node back on its old
    /// address without racing `TIME_WAIT` for the port.
    listeners: Vec<TcpListener>,
    /// Chaos-mode fault plane shared by all nodes (and restarted ones).
    faults: Option<Arc<FaultPlane>>,
}

/// Why [`LoopbackCluster::wait_converged`] gave up: the per-replica
/// frontier/digest/view picture at the timeout, so a chaos failure is
/// debuggable without rerunning the schedule.
#[derive(Clone)]
pub struct ConvergeTimeout {
    /// How long the wait ran.
    pub waited: Duration,
    /// Final snapshots of the live replicas (dead ones are absent).
    pub snaps: Vec<Snapshot>,
    /// Replicas that were dead (killed, never restarted) at the timeout.
    pub dead: Vec<u32>,
}

impl fmt::Display for ConvergeTimeout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cluster failed to converge within {:.1}s:",
            self.waited.as_secs_f64()
        )?;
        for s in &self.snaps {
            writeln!(
                f,
                "  r{}: view={}{} frontier={} last_exec={} digest={:?} journal={} entries\n      blocked: {}",
                s.id.0,
                s.view,
                if s.view_active { "" } else { " (changing)" },
                s.committed_frontier.0,
                s.last_exec.0,
                s.state_digest,
                s.journal.len(),
                s.exec_blocker,
            )?;
        }
        for r in &self.dead {
            writeln!(f, "  r{r}: dead")?;
        }
        Ok(())
    }
}

impl fmt::Debug for ConvergeTimeout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl std::error::Error for ConvergeTimeout {}

/// A non-panicking convergence outcome for chaos campaigns: either the
/// wait timed out (laggards, lost liveness) or the safety oracle itself
/// tripped (divergent committed journals — waiting cannot repair that).
#[derive(Debug)]
pub enum ConvergeFailure {
    /// No agreement before the deadline; diagnostics attached.
    Timeout(ConvergeTimeout),
    /// Journal divergence description from
    /// [`LoopbackCluster::check_journal_agreement`].
    Safety(String),
}

impl LoopbackCluster {
    /// Boots `3f + 1` replicas on ephemeral loopback ports.
    ///
    /// The `PBFT_WORKERS` environment variable (when set to a positive
    /// integer) turns on the MAC worker pool for every node — CI uses it
    /// to run the whole loopback suite under the threaded data plane
    /// without touching each test.
    pub fn start(f: usize, clients: u32) -> LoopbackCluster {
        let workers = std::env::var("PBFT_WORKERS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        Self::start_tuned(f, clients, workers, None)
    }

    /// [`LoopbackCluster::start`] with explicit data-plane tuning:
    /// `workers` MAC pool threads per node (0 = single-threaded direct
    /// path) and an optional primary `pipeline_depth` override (None
    /// keeps the topology default).
    pub fn start_tuned(
        f: usize,
        clients: u32,
        workers: usize,
        pipeline_depth: Option<u64>,
    ) -> LoopbackCluster {
        Self::start_with(f, clients, move |topo| {
            topo.workers = workers;
            if let Some(depth) = pipeline_depth {
                topo.pipeline_depth = depth;
            }
        })
    }

    /// The fully general constructor: binds the listeners, builds the
    /// default loopback topology, then lets `tune` rewrite any knob
    /// (workers, pipeline depth, view-change timeout, ...) before the
    /// nodes boot.
    pub fn start_with(f: usize, clients: u32, tune: impl FnOnce(&mut Topology)) -> LoopbackCluster {
        Self::start_chaos(f, clients, None, tune)
    }

    /// [`LoopbackCluster::start_with`] with an optional [`FaultPlane`]
    /// wired into every node's transport — the realnet chaos runner's
    /// entry point. Client drivers must share the same plane (via
    /// [`crate::client::ClientHooks`]) for client↔replica faults.
    pub fn start_chaos(
        f: usize,
        clients: u32,
        faults: Option<Arc<FaultPlane>>,
        tune: impl FnOnce(&mut Topology),
    ) -> LoopbackCluster {
        let n = 3 * f + 1;
        // Bind every listener first so the topology is complete before
        // any node dials a peer.
        let listeners: Vec<TcpListener> = (0..n)
            .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind loopback"))
            .collect();
        let mut topo = Topology::localhost(f, clients, 1);
        topo.set_replicas(
            listeners
                .iter()
                .map(|l| l.local_addr().expect("addr"))
                .collect(),
        );
        // Small checkpoint interval so loopback tests cross checkpoint
        // and garbage-collection boundaries quickly.
        topo.checkpoint_interval = 16;
        tune(&mut topo);
        let nodes = listeners
            .iter()
            .enumerate()
            .map(|(i, listener)| {
                Some(spawn_service_replica_faulted(
                    ReplicaId(i as u32),
                    topo.clone(),
                    listener.try_clone().expect("clone listener"),
                    faults.clone(),
                ))
            })
            .collect();
        LoopbackCluster {
            topo,
            nodes,
            listeners,
            faults,
        }
    }

    /// Number of replicas.
    pub fn n(&self) -> usize {
        self.topo.replicas.len()
    }

    /// The cluster's topology, for custom client drivers (the Andrew
    /// benchmark drives [`crate::bfs_driver::run_andrew_mux`] directly).
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Runs `clients` concurrent client workers (ids `0..clients`) and
    /// returns their reports.
    ///
    /// A worker that panics no longer poisons the whole run: every
    /// surviving worker's report is still collected, and the panic names
    /// the dead worker(s) and their reason instead of surfacing as an
    /// anonymous `.join()` failure.
    pub fn run_clients(
        &self,
        clients: u32,
        workload: Workload,
        deadline: Duration,
    ) -> Vec<ClientReport> {
        let ids: Vec<ClientId> = (0..clients).map(ClientId).collect();
        let outcomes = run_workers(&ids, |c| run_client(c, &self.topo, &workload, deadline));
        let mut reports = Vec::with_capacity(outcomes.len());
        let mut failures = Vec::new();
        for (c, outcome) in outcomes {
            match outcome {
                Ok(report) => reports.push(report),
                Err(why) => failures.push(format!("client {} panicked: {why}", c.0)),
            }
        }
        assert!(
            failures.is_empty(),
            "{}/{} client workers died ({} reported): {}",
            failures.len(),
            clients,
            reports.len(),
            failures.join("; ")
        );
        reports
    }

    /// [`LoopbackCluster::run_clients`] with the multiplexed driver:
    /// `clients` logical clients split across `groups` driver threads
    /// (see [`crate::client::run_mux_clients`]). Worker panics are
    /// collected, not poisoned, exactly like `run_clients`.
    pub fn run_clients_mux(
        &self,
        clients: u32,
        groups: usize,
        workload: Workload,
        deadline: Duration,
    ) -> Vec<ClientReport> {
        let ids: Vec<ClientId> = (0..clients).map(ClientId).collect();
        let chunks: Vec<&[ClientId]> = ids.chunks(ids.len().div_ceil(groups.max(1))).collect();
        let group_ids: Vec<ClientId> = (0..chunks.len() as u32).map(ClientId).collect();
        let outcomes = run_workers(&group_ids, |g| {
            crate::client::run_mux_clients(chunks[g.0 as usize], &self.topo, &workload, deadline)
        });
        let mut reports = Vec::with_capacity(clients as usize);
        let mut failures = Vec::new();
        for (g, outcome) in outcomes {
            match outcome {
                Ok(group_reports) => reports.extend(group_reports),
                Err(why) => failures.push(format!("client group {} panicked: {why}", g.0)),
            }
        }
        assert!(
            failures.is_empty(),
            "{}/{} client driver groups died ({} client reports collected): {}",
            failures.len(),
            chunks.len(),
            reports.len(),
            failures.join("; ")
        );
        reports.sort_by_key(|r| r.client.0);
        reports
    }

    /// Kills replica `r` abruptly (fail-stop).
    pub fn kill(&mut self, r: ReplicaId) {
        if let Some(mut node) = self.nodes[r.0 as usize].take() {
            node.kill();
        }
    }

    /// Restarts a killed replica on its original address: a fresh node
    /// (empty state, view 0) boots on a clone of the retained listener
    /// and catches up through status retransmission or, once the cluster
    /// has checkpointed past it, state transfer (§5.3.2). No-op when the
    /// replica is still alive.
    pub fn restart(&mut self, r: ReplicaId) {
        let i = r.0 as usize;
        if self.nodes[i].is_some() {
            return;
        }
        let listener = self.listeners[i]
            .try_clone()
            .expect("clone retained listener");
        self.nodes[i] = Some(spawn_service_replica_faulted(
            r,
            self.topo.clone(),
            listener,
            self.faults.clone(),
        ));
    }

    /// Snapshot of replica `r`, or `None` when it was killed.
    pub fn snapshot(&self, r: ReplicaId) -> Option<Snapshot> {
        self.nodes[r.0 as usize].as_ref().and_then(|n| n.snapshot())
    }

    /// Snapshots of every live replica.
    pub fn snapshots(&self) -> Vec<Snapshot> {
        (0..self.n())
            .filter_map(|i| self.snapshot(ReplicaId(i as u32)))
            .collect()
    }

    /// Waits until every live replica reports the same state digest at
    /// the same committed frontier, with their committed journals in
    /// agreement wherever they overlap. Laggards catch up through
    /// status retransmission — or, when they fell behind the stable
    /// checkpoint, through state transfer (§5.3.2), which is why the
    /// oracle cannot demand bit-identical journals: a state-transferred
    /// replica legitimately has a gap for the range it fetched as pages
    /// instead of executing locally. Returns the converged snapshots, or
    /// a [`ConvergeTimeout`] carrying every live replica's frontier,
    /// digest, and view — but panics immediately on an actual safety
    /// violation (two replicas committing different digests for one
    /// sequence number), which waiting can never repair.
    pub fn wait_converged(&self, timeout: Duration) -> Result<Vec<Snapshot>, ConvergeTimeout> {
        self.try_wait_converged(timeout).map_err(|e| match e {
            ConvergeFailure::Timeout(t) => t,
            ConvergeFailure::Safety(divergence) => panic!("safety violation: {divergence}"),
        })
    }

    /// [`LoopbackCluster::wait_converged`] that reports a safety
    /// divergence instead of panicking — the chaos runner records it as
    /// an oracle violation to be shrunk and replayed.
    pub fn try_wait_converged(&self, timeout: Duration) -> Result<Vec<Snapshot>, ConvergeFailure> {
        let started = Instant::now();
        let deadline = started + timeout;
        loop {
            let snaps = self.snapshots();
            if !snaps.is_empty() {
                if let Err(divergence) = Self::check_journal_agreement(&snaps) {
                    return Err(ConvergeFailure::Safety(divergence));
                }
                let converged = snaps.windows(2).all(|w| {
                    w[0].committed_frontier == w[1].committed_frontier
                        && w[0].state_digest == w[1].state_digest
                });
                if converged {
                    return Ok(snaps);
                }
            }
            if Instant::now() >= deadline {
                let dead = (0..self.n() as u32)
                    .filter(|&i| !snaps.iter().any(|s| s.id.0 == i))
                    .collect();
                return Err(ConvergeFailure::Timeout(ConvergeTimeout {
                    waited: started.elapsed(),
                    snaps,
                    dead,
                }));
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    /// The cross-replica safety oracle: every pair of committed journals
    /// must agree wherever their sequence numbers overlap (replicas may
    /// lag; they must never diverge). Returns an error description on
    /// violation.
    pub fn check_journal_agreement(snaps: &[Snapshot]) -> Result<(), String> {
        for a in snaps {
            for b in snaps {
                if a.id.0 >= b.id.0 {
                    continue;
                }
                let ja = a.committed_journal();
                let jb = b.committed_journal();
                for (seq, da) in &ja {
                    if jb.get(seq).is_some_and(|db| db != da) {
                        return Err(format!(
                            "committed journals of r{} and r{} disagree at seq {seq}",
                            a.id.0, b.id.0
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Shuts every node down.
    pub fn shutdown(mut self) {
        for node in self.nodes.iter_mut() {
            if let Some(mut node) = node.take() {
                node.kill();
            }
        }
    }
}

impl Drop for LoopbackCluster {
    fn drop(&mut self) {
        for node in self.nodes.iter_mut() {
            if let Some(mut node) = node.take() {
                node.kill();
            }
        }
    }
}

/// A sharded loopback deployment: `shards` independent PBFT groups, each
/// a full [`LoopbackCluster`] on its own ephemeral ports with its own
/// shard id — so every group derives disjoint key material from the
/// shared `key_seed` and a frame from one shard can never verify on
/// another. Clients are partitioned across shards (single-shard routing:
/// a client's keys all live on its shard, so it pays no cross-group
/// cost), which makes aggregate throughput the sum of `shards`
/// independent consensus pipelines.
pub struct ShardedLoopback {
    /// The per-shard groups; index `k` is shard `k`.
    pub shards: Vec<LoopbackCluster>,
}

impl ShardedLoopback {
    /// Boots `shards` groups of `3f + 1` replicas. `tune` runs on every
    /// shard's topology (after its shard id and deployment shape are
    /// set) before that group's nodes start.
    pub fn start_with(
        f: usize,
        clients: u32,
        shards: u32,
        tune: impl Fn(&mut Topology) + Copy,
    ) -> ShardedLoopback {
        use bft_types::ShardId;
        let groups = (0..shards)
            .map(|k| {
                LoopbackCluster::start_with(f, clients, move |topo| {
                    topo.shard = ShardId(k);
                    // This group only knows its own addresses; slots for
                    // the sibling shards keep indexing consistent.
                    let mine = std::mem::take(&mut topo.replicas);
                    topo.all_shards = vec![Vec::new(); shards as usize];
                    topo.all_shards[k as usize] = mine.clone();
                    topo.replicas = mine;
                    tune(topo);
                })
            })
            .collect();
        ShardedLoopback { shards: groups }
    }

    /// Boots with default tuning.
    pub fn start(f: usize, clients: u32, shards: u32) -> ShardedLoopback {
        Self::start_with(f, clients, shards, |_| {})
    }

    /// Number of shards.
    pub fn num_shards(&self) -> u32 {
        self.shards.len() as u32
    }

    /// Runs `clients` multiplexed clients against *every* shard
    /// concurrently (each shard gets its own driver threads; client ids
    /// are per-shard principals). Returns the reports indexed by shard.
    pub fn run_clients_mux(
        &self,
        clients: u32,
        groups: usize,
        workload: &Workload,
        deadline: Duration,
    ) -> Vec<Vec<ClientReport>> {
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .shards
                .iter()
                .map(|shard| {
                    let workload = workload.clone();
                    scope.spawn(move || shard.run_clients_mux(clients, groups, workload, deadline))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard client driver panicked"))
                .collect()
        })
    }

    /// Waits for every shard to converge (same frontier + digest within
    /// each group, journals in agreement) and returns the per-shard
    /// snapshots. Panics with the shard id on timeout or safety
    /// violation — the per-shard journal verification step.
    pub fn wait_all_converged(&self, timeout: Duration) -> Vec<Vec<Snapshot>> {
        self.shards
            .iter()
            .enumerate()
            .map(|(k, shard)| {
                shard
                    .wait_converged(timeout)
                    .unwrap_or_else(|diag| panic!("shard {k}: {diag}"))
            })
            .collect()
    }

    /// Shuts every group down.
    pub fn shutdown(self) {
        for shard in self.shards {
            shard.shutdown();
        }
    }
}
