//! An in-process PBFT cluster on 127.0.0.1 ephemeral ports.
//!
//! [`LoopbackCluster`] spawns `3f + 1` replica nodes, each with its own
//! transport threads, talking real TCP through the loopback interface —
//! the smallest deployment that exercises every runtime layer (framing,
//! reconnect, real timers) without leaving the test process. Integration
//! tests drive it with [`crate::client::run_client`] workers and check
//! the same oracle the simulator's chaos campaigns use: identical
//! journals, exactly-once execution, liveness.

use crate::client::{run_client, ClientReport, Workload};
use crate::config::Topology;
use crate::node::{spawn_counter_replica, NodeHandle, Snapshot};
use bft_types::{ClientId, ReplicaId};
use std::net::TcpListener;
use std::time::{Duration, Instant};

/// A running loopback cluster.
pub struct LoopbackCluster {
    /// The topology all nodes and clients share.
    pub topo: Topology,
    nodes: Vec<Option<NodeHandle>>,
}

impl LoopbackCluster {
    /// Boots `3f + 1` replicas on ephemeral loopback ports.
    pub fn start(f: usize, clients: u32) -> LoopbackCluster {
        let n = 3 * f + 1;
        // Bind every listener first so the topology is complete before
        // any node dials a peer.
        let listeners: Vec<TcpListener> = (0..n)
            .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind loopback"))
            .collect();
        let mut topo = Topology::localhost(f, clients, 1);
        topo.replicas = listeners
            .iter()
            .map(|l| l.local_addr().expect("addr"))
            .collect();
        // Small checkpoint interval so loopback tests cross checkpoint
        // and garbage-collection boundaries quickly.
        topo.checkpoint_interval = 16;
        let nodes = listeners
            .into_iter()
            .enumerate()
            .map(|(i, listener)| {
                Some(spawn_counter_replica(
                    ReplicaId(i as u32),
                    topo.clone(),
                    listener,
                ))
            })
            .collect();
        LoopbackCluster { topo, nodes }
    }

    /// Number of replicas.
    pub fn n(&self) -> usize {
        self.topo.replicas.len()
    }

    /// Runs `clients` concurrent client workers (ids `0..clients`) and
    /// returns their reports.
    pub fn run_clients(
        &self,
        clients: u32,
        workload: Workload,
        deadline: Duration,
    ) -> Vec<ClientReport> {
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    let topo = &self.topo;
                    let workload = workload.clone();
                    scope.spawn(move || run_client(ClientId(c), topo, &workload, deadline))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client worker"))
                .collect()
        })
    }

    /// Kills replica `r` abruptly (fail-stop).
    pub fn kill(&mut self, r: ReplicaId) {
        if let Some(mut node) = self.nodes[r.0 as usize].take() {
            node.kill();
        }
    }

    /// Snapshot of replica `r`, or `None` when it was killed.
    pub fn snapshot(&self, r: ReplicaId) -> Option<Snapshot> {
        self.nodes[r.0 as usize].as_ref().and_then(|n| n.snapshot())
    }

    /// Snapshots of every live replica.
    pub fn snapshots(&self) -> Vec<Snapshot> {
        (0..self.n())
            .filter_map(|i| self.snapshot(ReplicaId(i as u32)))
            .collect()
    }

    /// Waits until every live replica reports the same committed journal
    /// (normalized per the safety oracle — last digest per sequence
    /// number at or below the committed frontier; raw journals may
    /// legitimately differ by re-execution entries after view changes)
    /// and the same state digest. Laggards catch up through status
    /// retransmission. Returns the converged snapshots, or `None` on
    /// timeout — but panics immediately on an actual safety violation
    /// (two frontiers committing different digests for one sequence
    /// number), which waiting can never repair.
    pub fn wait_converged(&self, timeout: Duration) -> Option<Vec<Snapshot>> {
        let deadline = Instant::now() + timeout;
        loop {
            let snaps = self.snapshots();
            if !snaps.is_empty() {
                if let Err(divergence) = Self::check_journal_agreement(&snaps) {
                    panic!("safety violation: {divergence}");
                }
                let identical = snaps.windows(2).all(|w| {
                    w[0].committed_journal() == w[1].committed_journal()
                        && w[0].state_digest == w[1].state_digest
                });
                if identical {
                    return Some(snaps);
                }
            }
            if Instant::now() >= deadline {
                return None;
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    /// The cross-replica safety oracle: every pair of committed journals
    /// must agree wherever their sequence numbers overlap (replicas may
    /// lag; they must never diverge). Returns an error description on
    /// violation.
    pub fn check_journal_agreement(snaps: &[Snapshot]) -> Result<(), String> {
        for a in snaps {
            for b in snaps {
                if a.id.0 >= b.id.0 {
                    continue;
                }
                let ja = a.committed_journal();
                let jb = b.committed_journal();
                for (seq, da) in &ja {
                    if jb.get(seq).is_some_and(|db| db != da) {
                        return Err(format!(
                            "committed journals of r{} and r{} disagree at seq {seq}",
                            a.id.0, b.id.0
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Shuts every node down.
    pub fn shutdown(mut self) {
        for node in self.nodes.iter_mut() {
            if let Some(mut node) = node.take() {
                node.kill();
            }
        }
    }
}

impl Drop for LoopbackCluster {
    fn drop(&mut self) {
        for node in self.nodes.iter_mut() {
            if let Some(mut node) = node.take() {
                node.kill();
            }
        }
    }
}
