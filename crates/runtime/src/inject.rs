//! Fault injection for the real TCP runtime: the live counterpart of the
//! simulator's lossy channel.
//!
//! A [`FaultPlane`] is a shared, thread-safe decision table consulted by
//! every [`crate::transport::Transport`] on its *send* path, one verdict
//! per directed frame: deliver now, deliver late (delay/reorder), deliver
//! twice (duplicate), or drop. The same fault vocabulary as the
//! simulator's `bft_net` channel applies — group partitions, full node
//! isolation, and per-directed-link [`LinkProfile`] loss/jitter — so a
//! chaos schedule generated for the simulator drives real sockets
//! unchanged. Faults act on whole frames *before* they reach a peer
//! queue: a dropped frame was never sent, a delayed frame re-enters the
//! normal routing when its deadline passes (on a per-transport delay
//! thread), which also reorders it behind frames sent later. TCP still
//! delivers whatever survives in order per connection — loss and
//! reordering live here, between the protocol and the socket, exactly
//! where a WAN or a flaky switch would put them.
//!
//! The plane's RNG is seeded, so a plan's *schedule* replays exactly;
//! the interleaving with protocol traffic is real time and genuinely
//! nondeterministic, which is the point of running chaos against the
//! real stack.
//!
//! [`StormSignal`] is the second live control: a per-client epoch bump
//! that makes a client force-fire its armed retransmission timers, the
//! runtime's version of the simulator's synchronized retransmission
//! storm.

use bft_net::LinkProfile;
use bft_types::{ClientId, NodeId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Per-directed-link tallies of injected faults (monotonic).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkTally {
    /// Frames held back (jitter / extra latency) before delivery.
    pub delayed: u64,
    /// Frames dropped by partitions, isolation, or link loss.
    pub dropped: u64,
    /// Frames delivered twice.
    pub duplicated: u64,
}

impl LinkTally {
    fn add(&mut self, other: &LinkTally) {
        self.delayed += other.delayed;
        self.dropped += other.dropped;
        self.duplicated += other.duplicated;
    }
}

/// The verdict for one frame on one directed link.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SendVerdict {
    /// The frame is lost (blocked link or loss roll).
    Drop,
    /// The frame is delivered; `delay_us` holds it back first (0 = now),
    /// and `duplicate_us` schedules a second copy that much later.
    Deliver {
        /// Microseconds to hold the frame before routing it.
        delay_us: u64,
        /// When set, a duplicate copy is routed after this many µs.
        duplicate_us: Option<u64>,
    },
}

#[derive(Default)]
struct PlaneState {
    /// Partition group per node; nodes not listed (clients, usually)
    /// talk to everyone, mirroring the simulator's semantics.
    groups: HashMap<NodeId, u32>,
    /// Nodes cut off entirely (both directions).
    isolated: HashSet<NodeId>,
    /// Per-directed-link fault profiles.
    links: HashMap<(NodeId, NodeId), LinkProfile>,
    /// Injected-fault tallies per directed link.
    tally: HashMap<(NodeId, NodeId), LinkTally>,
}

/// A shared fault-decision table for live transports. One plane is
/// shared by every node and client of a cluster; fault controls take
/// effect on the next frame sent.
pub struct FaultPlane {
    rng: Mutex<StdRng>,
    state: Mutex<PlaneState>,
}

impl FaultPlane {
    /// A clean plane (no faults) with a seeded loss/jitter RNG.
    pub fn new(seed: u64) -> Arc<FaultPlane> {
        Arc::new(FaultPlane {
            rng: Mutex::new(StdRng::seed_from_u64(seed ^ 0xfa01_70e5)),
            state: Mutex::new(PlaneState::default()),
        })
    }

    /// Splits the listed nodes into disconnected groups. Nodes absent
    /// from every group (clients) keep talking to everyone.
    pub fn partition(&self, groups: &[Vec<NodeId>]) {
        let mut st = self.state.lock().expect("plane lock");
        st.groups.clear();
        for (gi, group) in groups.iter().enumerate() {
            for &node in group {
                st.groups.insert(node, gi as u32);
            }
        }
    }

    /// Removes the partition.
    pub fn heal_partition(&self) {
        self.state.lock().expect("plane lock").groups.clear();
    }

    /// Cuts `node` off in both directions.
    pub fn isolate(&self, node: NodeId) {
        self.state.lock().expect("plane lock").isolated.insert(node);
    }

    /// Reconnects an isolated node.
    pub fn reconnect(&self, node: NodeId) {
        self.state
            .lock()
            .expect("plane lock")
            .isolated
            .remove(&node);
    }

    /// Installs a fault profile on the directed link `from → to`.
    pub fn set_link(&self, from: NodeId, to: NodeId, profile: LinkProfile) {
        self.state
            .lock()
            .expect("plane lock")
            .links
            .insert((from, to), profile);
    }

    /// Restores the directed link `from → to` to clean.
    pub fn clear_link(&self, from: NodeId, to: NodeId) {
        self.state
            .lock()
            .expect("plane lock")
            .links
            .remove(&(from, to));
    }

    /// Removes every fault (partitions, isolation, link profiles).
    pub fn clear_all(&self) {
        let mut st = self.state.lock().expect("plane lock");
        st.groups.clear();
        st.isolated.clear();
        st.links.clear();
    }

    /// Decides the fate of one frame from `from` to `to`, updating the
    /// link tallies. Same decision order as the simulator channel:
    /// blocked links drop deterministically, then the link profile rolls
    /// loss, jitter, and duplication.
    pub fn decide(&self, from: NodeId, to: NodeId) -> SendVerdict {
        let mut st = self.state.lock().expect("plane lock");
        if !link_up(&st, from, to) {
            st.tally.entry((from, to)).or_default().dropped += 1;
            return SendVerdict::Drop;
        }
        let Some(profile) = st.links.get(&(from, to)).copied() else {
            return SendVerdict::Deliver {
                delay_us: 0,
                duplicate_us: None,
            };
        };
        let mut rng = self.rng.lock().expect("plane rng");
        if profile.drop_prob > 0.0 && rng.random_bool(profile.drop_prob) {
            st.tally.entry((from, to)).or_default().dropped += 1;
            return SendVerdict::Drop;
        }
        let mut delay_us = profile.extra_latency_us;
        if profile.jitter_us > 0 {
            delay_us += rng.random_range(0..=profile.jitter_us);
        }
        let duplicate_us =
            if profile.duplicate_prob > 0.0 && rng.random_bool(profile.duplicate_prob) {
                // The copy trails the original, like the simulator's.
                Some(delay_us + rng.random_range(1..=profile.jitter_us.max(100)))
            } else {
                None
            };
        drop(rng);
        let tally = st.tally.entry((from, to)).or_default();
        if delay_us > 0 {
            tally.delayed += 1;
        }
        if duplicate_us.is_some() {
            tally.duplicated += 1;
        }
        SendVerdict::Deliver {
            delay_us,
            duplicate_us,
        }
    }

    /// Injected-fault tallies for one directed link.
    pub fn link_tally(&self, from: NodeId, to: NodeId) -> LinkTally {
        self.state
            .lock()
            .expect("plane lock")
            .tally
            .get(&(from, to))
            .copied()
            .unwrap_or_default()
    }

    /// Injected-fault tallies summed over every link.
    pub fn total_tally(&self) -> LinkTally {
        let st = self.state.lock().expect("plane lock");
        let mut sum = LinkTally::default();
        for t in st.tally.values() {
            sum.add(t);
        }
        sum
    }
}

/// True when frames may flow from `from` to `to`: neither endpoint
/// isolated, and not separated by a partition (nodes without a group
/// assignment talk to everyone).
fn link_up(st: &PlaneState, from: NodeId, to: NodeId) -> bool {
    if st.isolated.contains(&from) || st.isolated.contains(&to) {
        return false;
    }
    match (st.groups.get(&from), st.groups.get(&to)) {
        (Some(a), Some(b)) => a == b,
        _ => true,
    }
}

/// Synchronized retransmission storms for live clients: bumping a
/// client's epoch makes its driver force-fire every armed retransmission
/// timer on its next poll.
pub struct StormSignal {
    epochs: Vec<AtomicU64>,
}

impl StormSignal {
    /// A signal covering clients `0..clients`.
    pub fn new(clients: u32) -> Arc<StormSignal> {
        Arc::new(StormSignal {
            epochs: (0..clients).map(|_| AtomicU64::new(0)).collect(),
        })
    }

    /// Fires a storm across the first `clients` clients.
    pub fn trigger(&self, clients: u32) {
        for epoch in self.epochs.iter().take(clients as usize) {
            epoch.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// The client's current storm epoch (drivers poll for changes).
    pub fn epoch(&self, c: ClientId) -> u64 {
        self.epochs
            .get(c.0 as usize)
            .map(|e| e.load(Ordering::Relaxed))
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bft_types::ReplicaId;

    fn r(i: u32) -> NodeId {
        NodeId::Replica(ReplicaId(i))
    }

    #[test]
    fn clean_plane_delivers_everything() {
        let plane = FaultPlane::new(1);
        for _ in 0..100 {
            assert_eq!(
                plane.decide(r(0), r(1)),
                SendVerdict::Deliver {
                    delay_us: 0,
                    duplicate_us: None
                }
            );
        }
        assert_eq!(plane.total_tally(), LinkTally::default());
    }

    #[test]
    fn partitions_and_isolation_block_links() {
        let plane = FaultPlane::new(2);
        plane.partition(&[vec![r(0)], vec![r(1), r(2)]]);
        assert_eq!(plane.decide(r(0), r(1)), SendVerdict::Drop);
        assert_eq!(plane.decide(r(1), r(0)), SendVerdict::Drop);
        // Same group flows; unassigned nodes (clients) reach everyone.
        assert!(matches!(
            plane.decide(r(1), r(2)),
            SendVerdict::Deliver { .. }
        ));
        let client = NodeId::Client(ClientId(0));
        assert!(matches!(
            plane.decide(client, r(0)),
            SendVerdict::Deliver { .. }
        ));
        plane.heal_partition();
        assert!(matches!(
            plane.decide(r(0), r(1)),
            SendVerdict::Deliver { .. }
        ));
        plane.isolate(r(2));
        assert_eq!(plane.decide(r(2), r(1)), SendVerdict::Drop);
        assert_eq!(plane.decide(client, r(2)), SendVerdict::Drop);
        plane.reconnect(r(2));
        assert!(matches!(
            plane.decide(r(2), r(1)),
            SendVerdict::Deliver { .. }
        ));
        assert_eq!(plane.link_tally(r(0), r(1)).dropped, 1);
        assert_eq!(plane.link_tally(r(1), r(0)).dropped, 1);
    }

    #[test]
    fn link_profiles_are_directional_and_tallied() {
        let plane = FaultPlane::new(3);
        plane.set_link(
            r(0),
            r(1),
            LinkProfile {
                drop_prob: 1.0,
                duplicate_prob: 0.0,
                jitter_us: 0,
                extra_latency_us: 0,
            },
        );
        for _ in 0..10 {
            assert_eq!(plane.decide(r(0), r(1)), SendVerdict::Drop);
        }
        // Reverse direction untouched.
        assert!(matches!(
            plane.decide(r(1), r(0)),
            SendVerdict::Deliver {
                delay_us: 0,
                duplicate_us: None
            }
        ));
        assert_eq!(plane.link_tally(r(0), r(1)).dropped, 10);
        plane.clear_link(r(0), r(1));
        assert!(matches!(
            plane.decide(r(0), r(1)),
            SendVerdict::Deliver { .. }
        ));

        plane.set_link(
            r(2),
            r(3),
            LinkProfile {
                drop_prob: 0.0,
                duplicate_prob: 1.0,
                jitter_us: 500,
                extra_latency_us: 1_000,
            },
        );
        for _ in 0..10 {
            match plane.decide(r(2), r(3)) {
                SendVerdict::Deliver {
                    delay_us,
                    duplicate_us: Some(dup),
                } => {
                    assert!((1_000..=1_500).contains(&delay_us));
                    assert!(dup > delay_us);
                }
                v => panic!("expected delayed duplicate, got {v:?}"),
            }
        }
        let tally = plane.link_tally(r(2), r(3));
        assert_eq!(tally.duplicated, 10);
        assert_eq!(tally.delayed, 10);
        assert_eq!(plane.total_tally().dropped, 10);
    }

    #[test]
    fn storm_signal_bumps_prefix_epochs() {
        let storm = StormSignal::new(4);
        assert_eq!(storm.epoch(ClientId(0)), 0);
        storm.trigger(2);
        assert_eq!(storm.epoch(ClientId(0)), 1);
        assert_eq!(storm.epoch(ClientId(1)), 1);
        assert_eq!(storm.epoch(ClientId(2)), 0);
        // Out-of-range clients read 0 rather than panicking.
        assert_eq!(storm.epoch(ClientId(9)), 0);
    }
}
