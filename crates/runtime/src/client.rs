//! The real-network client: a [`bft_core::ClientProxy`] over the TCP
//! transport, plus the open/closed-loop load generator `pbft-client`
//! and the `realnet` benchmark share.
//!
//! The workload mix mirrors the benchmark and chaos campaigns: padded
//! counter increments with a configurable sprinkle of read-only reads
//! (the §5.1.3 fast path). Closed-loop clients issue the next operation
//! when the previous completes (plus think time); open-loop clients pace
//! invocations against the wall clock — if the system falls behind the
//! configured rate, the next invocation fires as soon as the previous
//! reply certificate lands, so sustained overload degrades to a closed
//! loop rather than queueing unboundedly (one in-flight operation per
//! client, as the protocol requires).

use crate::clock::RtTimers;
use crate::config::Topology;
use crate::inject::{FaultPlane, StormSignal};
use crate::transport::Transport;
use bft_core::{Action, ClientProxy, CompletedOp, Input, Target, TimerId};
use bft_statemachine::CounterService;
use bft_types::framing::frame_bytes;
use bft_types::{ClientId, Message, NodeId, ReplicaId, SimDuration, Timestamp, Wire};
use bytes::Bytes;
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How a client paces its operations.
#[derive(Clone, Copy, Debug)]
pub enum LoadMode {
    /// Issue the next operation when the previous completes, after an
    /// optional think time.
    Closed {
        /// Pause between completion and the next invocation.
        think: Duration,
    },
    /// Target a fixed invocation rate per client (best effort: the loop
    /// never holds more than one operation in flight).
    Open {
        /// Interval between scheduled invocations.
        interval: Duration,
    },
}

/// One client's workload.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Operations to issue.
    pub ops: u64,
    /// Operation payload size in bytes (first byte selects the op).
    pub op_bytes: usize,
    /// Every k-th operation is a read-only `GET` (0 = never).
    pub read_every: u64,
    /// Pacing mode.
    pub mode: LoadMode,
    /// Override of the client retransmission timeout (tests force
    /// retransmission storms by making this tiny).
    pub retransmit: Option<Duration>,
}

impl Workload {
    /// A tight closed loop of `ops` mixed operations.
    pub fn closed(ops: u64) -> Self {
        Workload {
            ops,
            op_bytes: 128,
            read_every: 4,
            mode: LoadMode::Closed {
                think: Duration::ZERO,
            },
            retransmit: None,
        }
    }

    /// The `(operation, read_only)` pair for the k-th op, reusing the
    /// benchmark mix: padded INC with every `read_every`-th op a GET.
    pub fn op(&self, k: u64) -> (Bytes, bool) {
        let read = self.read_every > 0 && k % self.read_every == self.read_every - 1;
        let code = if read {
            CounterService::OP_GET
        } else {
            CounterService::OP_INC
        };
        let mut body = vec![code];
        body.resize(self.op_bytes.max(1), 0xb7);
        (Bytes::from(body), read)
    }

    /// Number of `INC` (write) operations in the first `ops` operations.
    pub fn writes(&self) -> u64 {
        (0..self.ops).filter(|&k| !self.op(k).1).count() as u64
    }
}

/// What one client observed.
#[derive(Clone, Debug)]
pub struct ClientReport {
    /// The client id.
    pub client: ClientId,
    /// Operations that completed with a full reply certificate.
    pub completed: u64,
    /// Operations that needed at least one retransmission.
    pub retransmitted: u64,
    /// Per-operation latency, microseconds, in completion order.
    pub latencies_us: Vec<u64>,
    /// `(timestamp, result)` per completed operation.
    pub results: Vec<(Timestamp, Vec<u8>)>,
    /// Wall time from first invocation to last completion.
    pub wall: Duration,
}

impl ClientReport {
    /// Completed operations per wall-clock second.
    pub fn ops_per_sec(&self) -> f64 {
        if self.wall.is_zero() {
            return 0.0;
        }
        self.completed as f64 / self.wall.as_secs_f64()
    }

    /// The p-th latency percentile in microseconds (0.0 ..= 1.0).
    pub fn latency_percentile_us(&self, p: f64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let mut sorted = self.latencies_us.clone();
        sorted.sort_unstable();
        let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
        sorted[idx]
    }

    /// Mean latency in microseconds.
    pub fn latency_mean_us(&self) -> f64 {
        if self.latencies_us.is_empty() {
            return 0.0;
        }
        self.latencies_us.iter().sum::<u64>() as f64 / self.latencies_us.len() as f64
    }
}

/// Chaos-mode wiring for a client driver: an optional [`FaultPlane`] on
/// its transport and an optional [`StormSignal`] whose epoch bumps
/// force-fire the armed retransmission timers (the live analogue of the
/// simulator's synchronized retransmission storm).
#[derive(Clone, Default)]
pub struct ClientHooks {
    /// Fault table shared with the cluster's transports.
    pub faults: Option<Arc<FaultPlane>>,
    /// Retransmission-storm trigger, polled every loop iteration.
    pub storm: Option<Arc<StormSignal>>,
}

/// Runs one client against the cluster until the workload completes or
/// `deadline` passes. Returns what completed either way.
pub fn run_client(
    id: ClientId,
    topo: &Topology,
    workload: &Workload,
    deadline: Duration,
) -> ClientReport {
    run_client_with(id, topo, workload, deadline, &ClientHooks::default())
}

/// [`run_client`] with chaos hooks attached.
pub fn run_client_with(
    id: ClientId,
    topo: &Topology,
    workload: &Workload,
    deadline: Duration,
    hooks: &ClientHooks,
) -> ClientReport {
    let keys = topo.keys();
    let mut client_config = topo.client_config();
    if let Some(rt) = workload.retransmit {
        client_config.retransmit_timeout = SimDuration::from_micros(rt.as_micros() as u64);
    }
    let mut proxy = ClientProxy::new(id, client_config, &keys);
    let (in_tx, in_rx) = mpsc::channel::<Vec<u8>>();
    let peers: Vec<(NodeId, std::net::SocketAddr)> = topo
        .replicas
        .iter()
        .enumerate()
        .map(|(i, addr)| (NodeId::Replica(ReplicaId(i as u32)), *addr))
        .collect();
    let transport = Transport::start_faulted(
        vec![NodeId::Client(id)],
        None,
        peers,
        in_tx,
        hooks.faults.clone(),
    );
    let mut timers = RtTimers::<TimerId>::new();
    let mut storm_seen = hooks.storm.as_ref().map(|s| s.epoch(id)).unwrap_or(0);

    let started = Instant::now();
    let hard_deadline = started + deadline;
    let mut report = ClientReport {
        client: id,
        completed: 0,
        retransmitted: 0,
        latencies_us: Vec::with_capacity(workload.ops as usize),
        results: Vec::with_capacity(workload.ops as usize),
        wall: Duration::ZERO,
    };

    'ops: for k in 0..workload.ops {
        // Pacing.
        match workload.mode {
            LoadMode::Closed { think } => {
                if k > 0 && !think.is_zero() {
                    std::thread::sleep(think);
                }
            }
            LoadMode::Open { interval } => {
                let slot = started + interval * (k as u32);
                let now = Instant::now();
                if slot > now {
                    std::thread::sleep(slot - now);
                }
            }
        }
        let (op, read_only) = workload.op(k);
        let invoked = Instant::now();
        let actions = proxy.invoke(op, read_only);
        apply_client_actions(actions, &transport, &mut timers, topo.replicas.len());

        // Wait for the reply certificate.
        let done: Option<CompletedOp> = loop {
            if Instant::now() >= hard_deadline {
                break None;
            }
            // A storm epoch bump force-fires every armed timer: the
            // in-flight request rebroadcasts immediately, synchronized
            // across every client the storm covers.
            if let Some(storm) = &hooks.storm {
                let epoch = storm.epoch(id);
                if epoch != storm_seen {
                    storm_seen = epoch;
                    let mut finished = None;
                    for timer in timers.drain_armed() {
                        let (actions, done) = proxy.on_input(Input::Timer(timer));
                        apply_client_actions(actions, &transport, &mut timers, topo.replicas.len());
                        finished = finished.or(done);
                    }
                    if finished.is_some() {
                        break finished;
                    }
                }
            }
            // Client retransmission timer.
            if let Some(timer) = timers.pop_due() {
                let (actions, done) = proxy.on_input(Input::Timer(timer));
                apply_client_actions(actions, &transport, &mut timers, topo.replicas.len());
                if done.is_some() {
                    break done;
                }
            }
            let wait = timers
                .until_next()
                .unwrap_or(Duration::from_millis(20))
                .min(Duration::from_millis(20));
            match in_rx.recv_timeout(wait) {
                Ok(payload) => {
                    let mut slice = payload.as_slice();
                    let Ok(msg) = Message::decode(&mut slice) else {
                        continue;
                    };
                    let (actions, done) = proxy.on_input(Input::Deliver(msg));
                    apply_client_actions(actions, &transport, &mut timers, topo.replicas.len());
                    if done.is_some() {
                        break done;
                    }
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break None,
            }
        };
        match done {
            Some(op) => {
                report.completed += 1;
                if op.retransmissions > 0 {
                    report.retransmitted += 1;
                }
                report
                    .latencies_us
                    .push(invoked.elapsed().as_micros() as u64);
                report.results.push((op.timestamp, op.result.to_vec()));
            }
            None => break 'ops, // Deadline: report what we have.
        }
    }
    report.wall = started.elapsed();
    transport.shutdown();
    report
}

/// One instruction from an [`OpSource`] to the multiplexed driver.
pub enum NextOp {
    /// Invoke `op`; `tag` identifies it in [`OpSource::done`].
    Invoke {
        /// Encoded operation body.
        op: Bytes,
        /// Whether to mark the request read-only (§5.1.3 fast path).
        read_only: bool,
        /// Opaque tag returned on completion.
        tag: u64,
    },
    /// Nothing issuable for this slot right now (an in-flight dependency
    /// must complete first); the driver polls again next iteration.
    Wait,
    /// The slot has no further work, ever.
    Finished,
}

/// A supply of operations for [`run_mux_sources`] — the seam that lets
/// the multiplexed driver run both the counter benchmark mix and the
/// BFS Andrew script without duplicating the event loop.
pub trait OpSource {
    /// Next instruction for idle slot `slot`.
    fn next(&mut self, slot: usize, now: Instant) -> NextOp;
    /// Records the completion of the op tagged `tag` on `slot`; returns
    /// the earliest instant the slot may invoke again (pacing).
    fn done(&mut self, slot: usize, tag: u64, op: &CompletedOp, latency: Duration) -> Instant;
    /// True once every slot's work is complete (driver exit condition).
    fn finished(&self) -> bool;
}

/// Drives many logical clients from ONE thread over ONE transport.
///
/// The transport greets as every client id, so all of them share the
/// same four sockets: requests from different clients coalesce into
/// batched writes, and each replica's replies to the whole group come
/// back over a single connection and are drained in one wake-up. On a
/// loaded host this collapses the per-operation thread-hop cost that
/// dominates when every client owns its own transport (8 threads and
/// ~4 context switches per frame), which is what lets the benchmark
/// drive high client counts without the load generator itself becoming
/// the bottleneck. Protocol semantics are unchanged — each logical
/// client is a full [`ClientProxy`] with its own timestamps,
/// retransmission timer, and reply certificate.
pub fn run_mux_clients(
    ids: &[ClientId],
    topo: &Topology,
    workload: &Workload,
    deadline: Duration,
) -> Vec<ClientReport> {
    /// The counter benchmark mix as an [`OpSource`]: per-slot op cursors
    /// over [`Workload::op`], with closed/open-loop pacing.
    struct WorkloadSource<'a> {
        workload: &'a Workload,
        next_k: Vec<u64>,
        started: Instant,
    }
    impl OpSource for WorkloadSource<'_> {
        fn next(&mut self, slot: usize, _now: Instant) -> NextOp {
            let k = self.next_k[slot];
            if k >= self.workload.ops {
                return NextOp::Finished;
            }
            let (op, read_only) = self.workload.op(k);
            NextOp::Invoke {
                op,
                read_only,
                tag: k,
            }
        }
        fn done(&mut self, slot: usize, _tag: u64, _op: &CompletedOp, _lat: Duration) -> Instant {
            self.next_k[slot] += 1;
            match self.workload.mode {
                LoadMode::Closed { think } => Instant::now() + think,
                LoadMode::Open { interval } => self.started + interval * (self.next_k[slot] as u32),
            }
        }
        fn finished(&self) -> bool {
            self.next_k.iter().all(|&k| k >= self.workload.ops)
        }
    }
    let mut source = WorkloadSource {
        workload,
        next_k: vec![0; ids.len()],
        started: Instant::now(),
    };
    run_mux_sources(ids, topo, &mut source, workload.retransmit, deadline)
}

/// The generic multiplexed driver behind [`run_mux_clients`]: one thread,
/// one multi-identity transport, one timer wheel, and an [`OpSource`]
/// deciding what each idle logical client invokes next.
pub fn run_mux_sources(
    ids: &[ClientId],
    topo: &Topology,
    source: &mut dyn OpSource,
    retransmit: Option<Duration>,
    deadline: Duration,
) -> Vec<ClientReport> {
    struct Slot {
        proxy: ClientProxy,
        report: ClientReport,
        /// Invocation time and tag of the in-flight op (None = idle).
        invoked: Option<(Instant, u64)>,
        /// Earliest time the next op may be invoked (pacing).
        ready_at: Instant,
        /// The source reported this slot has no further work.
        halted: bool,
    }

    /// Books a completed op into its slot and paces the next invocation.
    fn record_completion(slot: &mut Slot, i: usize, source: &mut dyn OpSource, done: CompletedOp) {
        let (invoked, tag) = slot.invoked.take().expect("completion without invocation");
        let latency = invoked.elapsed();
        slot.report.completed += 1;
        if done.retransmissions > 0 {
            slot.report.retransmitted += 1;
        }
        slot.report.latencies_us.push(latency.as_micros() as u64);
        slot.report
            .results
            .push((done.timestamp, done.result.to_vec()));
        slot.ready_at = source.done(i, tag, &done, latency);
    }

    let keys = topo.keys();
    let mut client_config = topo.client_config();
    if let Some(rt) = retransmit {
        client_config.retransmit_timeout = SimDuration::from_micros(rt.as_micros() as u64);
    }
    let (in_tx, in_rx) = mpsc::channel::<Vec<u8>>();
    let peers: Vec<(NodeId, std::net::SocketAddr)> = topo
        .replicas
        .iter()
        .enumerate()
        .map(|(i, addr)| (NodeId::Replica(ReplicaId(i as u32)), *addr))
        .collect();
    let transport = Transport::start_as(
        ids.iter().map(|&c| NodeId::Client(c)).collect(),
        None,
        peers,
        in_tx,
    );
    let n = topo.replicas.len();
    let mut timers = RtTimers::<(usize, TimerId)>::new();

    let started = Instant::now();
    let hard_deadline = started + deadline;
    let mut slots: Vec<Slot> = ids
        .iter()
        .map(|&c| Slot {
            proxy: ClientProxy::new(c, client_config.clone(), &keys),
            report: ClientReport {
                client: c,
                completed: 0,
                retransmitted: 0,
                latencies_us: Vec::new(),
                results: Vec::new(),
                wall: Duration::ZERO,
            },
            invoked: None,
            ready_at: started,
            halted: false,
        })
        .collect();
    let index: std::collections::HashMap<ClientId, usize> =
        ids.iter().enumerate().map(|(i, &c)| (c, i)).collect();

    while !source.finished() && Instant::now() < hard_deadline {
        // Fire due client retransmission timers.
        while let Some((i, tid)) = timers.pop_due() {
            let (actions, done) = slots[i].proxy.on_input(Input::Timer(tid));
            apply_mux_actions(i, actions, &transport, &mut timers, n);
            if let Some(done) = done {
                record_completion(&mut slots[i], i, source, done);
            }
        }
        // Invoke the next op on every idle, ready client.
        let now = Instant::now();
        for (i, slot) in slots.iter_mut().enumerate() {
            if slot.halted || slot.invoked.is_some() || now < slot.ready_at {
                continue;
            }
            match source.next(i, now) {
                NextOp::Invoke { op, read_only, tag } => {
                    slot.invoked = Some((Instant::now(), tag));
                    let actions = slot.proxy.invoke(op, read_only);
                    apply_mux_actions(i, actions, &transport, &mut timers, n);
                }
                NextOp::Wait => {}
                NextOp::Finished => slot.halted = true,
            }
        }
        // Drain inbound replies; one wake-up handles everything queued.
        let wait = timers
            .until_next()
            .unwrap_or(Duration::from_millis(20))
            .min(Duration::from_millis(20));
        let mut next = in_rx.recv_timeout(wait);
        loop {
            let payload = match next {
                Ok(p) => p,
                Err(RecvTimeoutError::Timeout) => break,
                Err(RecvTimeoutError::Disconnected) => break,
            };
            let mut slice = payload.as_slice();
            if let Ok(msg) = Message::decode(&mut slice) {
                let target = match &msg {
                    Message::Reply(r) => match r.requester {
                        bft_types::Requester::Client(c) => index.get(&c).copied(),
                        _ => None,
                    },
                    _ => None,
                };
                if let Some(i) = target {
                    let (actions, done) = slots[i].proxy.on_input(Input::Deliver(msg));
                    apply_mux_actions(i, actions, &transport, &mut timers, n);
                    if let Some(done) = done {
                        record_completion(&mut slots[i], i, source, done);
                    }
                }
            }
            next = in_rx.try_recv().map_err(|e| match e {
                mpsc::TryRecvError::Empty => RecvTimeoutError::Timeout,
                mpsc::TryRecvError::Disconnected => RecvTimeoutError::Disconnected,
            });
        }
    }

    let wall = started.elapsed();
    for slot in &mut slots {
        slot.report.wall = wall;
    }
    transport.shutdown();
    slots.into_iter().map(|s| s.report).collect()
}

/// Runs one worker thread per id in `ids` and collects every worker's
/// outcome. A panicking worker must not poison the whole run: the
/// survivors' results still come back, and the caller learns exactly
/// which worker died and what it said on the way down (instead of a
/// bare `.join().expect(..)` re-panic that discards both).
pub fn run_workers<T, F>(ids: &[ClientId], f: F) -> Vec<(ClientId, Result<T, String>)>
where
    T: Send,
    F: Fn(ClientId) -> T + Sync,
{
    std::thread::scope(|scope| {
        let f = &f;
        let handles: Vec<_> = ids
            .iter()
            .map(|&c| (c, scope.spawn(move || f(c))))
            .collect();
        // Join everything manually: scope would re-raise the first panic
        // and abandon the other workers' reports.
        handles
            .into_iter()
            .map(|(c, h)| (c, h.join().map_err(panic_message)))
            .collect()
    })
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

fn apply_client_actions(
    actions: Vec<Action>,
    transport: &Transport,
    timers: &mut RtTimers<TimerId>,
    n: usize,
) {
    for action in actions {
        match action {
            Action::Send { to, msg } => dispatch_send(transport, to, &msg, n),
            Action::SetTimer { id, after } => timers.set(id, after),
            Action::CancelTimer { id } => timers.cancel(id),
        }
    }
}

/// [`apply_client_actions`] for the multiplexed driver: timer ids are
/// namespaced by the slot index so many proxies share one timer wheel.
fn apply_mux_actions(
    slot: usize,
    actions: Vec<Action>,
    transport: &Transport,
    timers: &mut RtTimers<(usize, TimerId)>,
    n: usize,
) {
    for action in actions {
        match action {
            Action::Send { to, msg } => dispatch_send(transport, to, &msg, n),
            Action::SetTimer { id, after } => timers.set((slot, id), after),
            Action::CancelTimer { id } => timers.cancel((slot, id)),
        }
    }
}

/// Encodes `msg` once and queues it toward every destination `to` names.
fn dispatch_send(transport: &Transport, to: Target, msg: &Message, n: usize) {
    let frame = Arc::new(frame_bytes(msg));
    match to {
        Target::Replica(r) => transport.send(NodeId::Replica(r), frame),
        Target::AllReplicas => {
            for i in 0..n {
                transport.send(NodeId::Replica(ReplicaId(i as u32)), Arc::clone(&frame));
            }
        }
        Target::Requester(r) => transport.send(bft_core::authn::requester_node(r), frame),
        Target::Node(node) => transport.send(node, frame),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_mix_alternates_reads() {
        let w = Workload::closed(8);
        // read_every = 4: ops 3 and 7 are reads.
        let reads: Vec<bool> = (0..8).map(|k| w.op(k).1).collect();
        assert_eq!(
            reads,
            vec![false, false, false, true, false, false, false, true]
        );
        assert_eq!(w.writes(), 6);
        let (op, _) = w.op(0);
        assert_eq!(op.len(), 128);
        assert_eq!(op[0], CounterService::OP_INC);
        let (op, ro) = w.op(3);
        assert_eq!(op[0], CounterService::OP_GET);
        assert!(ro);
    }

    /// Regression for the worker-poisoning bug: one panicking worker
    /// used to take down the whole run via `.join().expect(..)`; now its
    /// panic message is captured and the other workers still report.
    #[test]
    fn run_workers_reports_panics_without_poisoning() {
        let ids: Vec<ClientId> = (0..3).map(ClientId).collect();
        let outcomes = run_workers(&ids, |c| {
            if c.0 == 1 {
                panic!("worker {} exploded", c.0);
            }
            c.0 * 10
        });
        assert_eq!(outcomes[0], (ClientId(0), Ok(0)));
        assert_eq!(outcomes[2], (ClientId(2), Ok(20)));
        let err = outcomes[1].1.as_ref().expect_err("worker 1 panicked");
        assert!(err.contains("worker 1 exploded"), "got: {err}");
    }

    #[test]
    fn report_percentiles() {
        let mut r = ClientReport {
            client: ClientId(0),
            completed: 4,
            retransmitted: 0,
            latencies_us: vec![40, 10, 30, 20],
            results: Vec::new(),
            wall: Duration::from_secs(2),
        };
        assert_eq!(r.latency_percentile_us(0.0), 10);
        assert_eq!(r.latency_percentile_us(1.0), 40);
        assert_eq!(r.latency_percentile_us(0.5), 30);
        assert!((r.latency_mean_us() - 25.0).abs() < 1e-9);
        assert!((r.ops_per_sec() - 2.0).abs() < 1e-9);
        r.latencies_us.clear();
        assert_eq!(r.latency_percentile_us(0.5), 0);
    }
}
