//! Loopback-cluster integration tests: the full PBFT stack over real
//! TCP sockets on 127.0.0.1, checked with the same oracle the
//! simulator's chaos campaigns use — identical journals across
//! replicas, exactly-once execution, and liveness through a primary
//! failure.
//!
//! The counter service makes exactly-once checkable end to end: client
//! `c`'s k-th increment returns exactly `k`, so a duplicated or lost
//! execution shows up in the client's own result stream, not just in
//! replica state.

use bft_runtime::client::{run_client, run_workers, LoadMode, Workload};
use bft_runtime::config::Topology;
use bft_runtime::loopback::LoopbackCluster;
use bft_runtime::node::spawn_counter_replica;
use bft_types::{ClientId, ReplicaId};
use std::time::Duration;

/// Overall per-test deadline: generous for slow CI machines; the tests
/// finish in a few seconds on a laptop.
const DEADLINE: Duration = Duration::from_secs(60);

/// Asserts one client's result stream is exactly the counter sequence:
/// the k-th write returns the number of writes so far, the k-th read
/// returns the count of writes before it (closed loop ⇒ read-your-writes).
fn assert_counter_sequence(workload: &Workload, results: &[(bft_types::Timestamp, Vec<u8>)]) {
    let mut writes = 0u64;
    for (k, (_, result)) in results.iter().enumerate() {
        let (_, read_only) = workload.op(k as u64);
        if !read_only {
            writes += 1;
        }
        let got = u64::from_le_bytes(result.as_slice().try_into().expect("8-byte counter"));
        assert_eq!(
            got, writes,
            "op {k} (read_only={read_only}) returned {got}, expected {writes}: \
             a duplicate or lost execution"
        );
    }
}

#[test]
fn normal_case_commits_mixed_workload_with_identical_journals() {
    let cluster = LoopbackCluster::start(1, 4);
    let workload = Workload::closed(60);
    let reports = cluster.run_clients(4, workload.clone(), DEADLINE);
    for r in &reports {
        assert_eq!(r.completed, 60, "client {} fell short", r.client.0);
        assert_counter_sequence(&workload, &r.results);
    }
    // Laggards catch up through status retransmission; then all four
    // journals and state digests must be bit-identical.
    let snaps = cluster
        .wait_converged(Duration::from_secs(60))
        .expect("replicas converge to identical journals");
    assert_eq!(snaps.len(), 4);
    assert!(
        !snaps[0].journal.is_empty(),
        "journals record the executed batches"
    );
    // 4 clients x 45 writes each executed exactly once. A replica that
    // caught up via state transfer executes fewer requests *locally*,
    // so the floor applies to the most-executed replica; convergence
    // above already proved the others hold the same state.
    let total_writes: u64 = 4 * workload.writes();
    let max_executed = snaps
        .iter()
        .map(|s| s.stats.requests_executed)
        .max()
        .unwrap();
    assert!(
        max_executed >= total_writes,
        "the full workload was executed ({max_executed} < {total_writes})"
    );
    cluster.shutdown();
}

#[test]
fn primary_kill_triggers_view_change_and_workload_completes() {
    let mut cluster = LoopbackCluster::start(1, 3);
    let topo = cluster.topo.clone();
    let workload = Workload {
        ops: 120,
        op_bytes: 128,
        read_every: 4,
        // A little think time so the workload spans the kill.
        mode: LoadMode::Closed {
            think: Duration::from_millis(5),
        },
        retransmit: None,
    };
    let reports = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..3)
            .map(|c| {
                let topo = &topo;
                let workload = workload.clone();
                scope.spawn(move || run_client(ClientId(c), topo, &workload, DEADLINE))
            })
            .collect();
        // Let the cluster commit some prefix in view 0, then fail-stop
        // the view-0 primary.
        std::thread::sleep(Duration::from_millis(300));
        cluster.kill(ReplicaId(0));
        workers
            .into_iter()
            .map(|w| w.join().expect("client worker"))
            .collect::<Vec<_>>()
    });
    for r in &reports {
        assert_eq!(
            r.completed, 120,
            "client {} did not finish after the view change",
            r.client.0
        );
        assert_counter_sequence(&workload, &r.results);
    }
    let snaps = cluster
        .wait_converged(Duration::from_secs(60))
        .expect("surviving replicas converge");
    assert_eq!(snaps.len(), 3, "replica 0 stays dead");
    assert!(
        snaps.iter().all(|s| s.view >= 1 && s.view_active),
        "the cluster moved past the dead primary's view: views {:?}",
        snaps.iter().map(|s| s.view).collect::<Vec<_>>()
    );
    cluster.shutdown();
}

/// Equivalence of the threaded (MAC-pool) driver and the direct
/// single-threaded step loop, checked the strongest way available on a
/// real network: a *mixed* cluster where replicas 0 and 2 run the
/// worker pool (off-thread verification, deferred outbound
/// authenticators) while replicas 1 and 3 run the plain deterministic
/// path. All four see the same live traffic; if the pooled driver
/// reordered inputs, dropped a verification, or emitted a frame a
/// direct replica cannot verify, the committed journals or state
/// digests would diverge.
#[test]
fn pooled_and_direct_replicas_commit_identical_journals() {
    let listeners: Vec<std::net::TcpListener> = (0..4)
        .map(|_| std::net::TcpListener::bind("127.0.0.1:0").expect("bind loopback"))
        .collect();
    let mut topo = Topology::localhost(1, 3, 1);
    topo.set_replicas(
        listeners
            .iter()
            .map(|l| l.local_addr().expect("addr"))
            .collect(),
    );
    topo.checkpoint_interval = 16;
    topo.pipeline_depth = 8;
    let nodes: Vec<_> = listeners
        .into_iter()
        .enumerate()
        .map(|(i, listener)| {
            let mut t = topo.clone();
            t.workers = if i % 2 == 0 { 2 } else { 0 };
            spawn_counter_replica(ReplicaId(i as u32), t, listener)
        })
        .collect();

    let workload = Workload::closed(60);
    let ids: Vec<ClientId> = (0..3).map(ClientId).collect();
    let outcomes = run_workers(&ids, |c| run_client(c, &topo, &workload, DEADLINE));
    for (c, outcome) in outcomes {
        let report = outcome.unwrap_or_else(|why| panic!("client {} died: {why}", c.0));
        assert_eq!(report.completed, 60, "client {} fell short", c.0);
        assert_counter_sequence(&workload, &report.results);
    }

    // Laggards catch up through status retransmission; then pooled and
    // direct replicas must agree bit for bit.
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    loop {
        let snaps: Vec<_> = nodes.iter().filter_map(|n| n.snapshot()).collect();
        assert_eq!(snaps.len(), 4, "all replicas stay alive");
        LoopbackCluster::check_journal_agreement(&snaps).expect("journals never diverge");
        let identical = snaps.windows(2).all(|w| {
            w[0].committed_journal() == w[1].committed_journal()
                && w[0].state_digest == w[1].state_digest
        });
        if identical {
            assert!(!snaps[0].committed_journal().is_empty());
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "mixed cluster failed to converge: {:?}",
            snaps
                .iter()
                .map(|s| (s.id.0, s.committed_frontier))
                .collect::<Vec<_>>()
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    for mut node in nodes {
        node.kill();
    }
}

/// The §5.1.4 pipelining satellite: with `pipeline_depth > 1` and the
/// MAC pool on, a forced client-retransmission storm (timeout far below
/// the loaded round trip) must still execute every operation exactly
/// once — the counter sequence proves it client-side, the write count
/// replica-side.
#[test]
fn pipelined_pooled_cluster_is_exactly_once_under_retransmit_storm() {
    let cluster = LoopbackCluster::start_tuned(1, 4, 2, Some(8));
    assert_eq!(cluster.topo.workers, 2);
    assert_eq!(cluster.topo.pipeline_depth, 8);
    let workload = Workload {
        ops: 40,
        op_bytes: 128,
        read_every: 4,
        mode: LoadMode::Closed {
            think: Duration::ZERO,
        },
        retransmit: Some(Duration::from_millis(2)),
    };
    let reports = cluster.run_clients(4, workload.clone(), DEADLINE);
    let mut any_retransmitted = 0u64;
    for r in &reports {
        assert_eq!(r.completed, 40, "client {} fell short", r.client.0);
        any_retransmitted += r.retransmitted;
        assert_counter_sequence(&workload, &r.results);
    }
    assert!(
        any_retransmitted > 0,
        "the tiny timeout must actually force retransmissions"
    );
    let snaps = cluster
        .wait_converged(Duration::from_secs(60))
        .expect("pipelined cluster converges after the storm");
    // Replica-side exactly-once: the most-executed replica (one that
    // never state-transferred) saw every write exactly once; the rest
    // converged to the same state digest above.
    let expected_writes = 4 * workload.writes();
    let max_executed = snaps
        .iter()
        .map(|s| s.stats.requests_executed)
        .max()
        .unwrap();
    assert!(
        max_executed >= expected_writes,
        "executed {max_executed} < {expected_writes}"
    );
    cluster.shutdown();
}

/// Restart regression: a killed replica comes back on its original
/// address (the cluster retains the listen socket), rejoins via status
/// retransmission or state transfer, and the full cluster converges to
/// identical journals again — crash–restart against real threads and
/// sockets, not just the simulator.
#[test]
fn killed_then_restarted_replica_rejoins_and_converges() {
    let mut cluster = LoopbackCluster::start(1, 3);
    let topo = cluster.topo.clone();
    let workload = Workload {
        ops: 80,
        op_bytes: 128,
        read_every: 4,
        // Think time so the workload spans the kill + dead window.
        mode: LoadMode::Closed {
            think: Duration::from_millis(5),
        },
        retransmit: None,
    };
    let reports = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..3)
            .map(|c| {
                let topo = &topo;
                let workload = workload.clone();
                scope.spawn(move || run_client(ClientId(c), topo, &workload, DEADLINE))
            })
            .collect();
        // Commit a prefix, fail-stop a backup, let the cluster commit
        // (and checkpoint) past it, then bring it back.
        std::thread::sleep(Duration::from_millis(250));
        cluster.kill(ReplicaId(2));
        std::thread::sleep(Duration::from_millis(400));
        cluster.restart(ReplicaId(2));
        workers
            .into_iter()
            .map(|w| w.join().expect("client worker"))
            .collect::<Vec<_>>()
    });
    for r in &reports {
        assert_eq!(
            r.completed, 80,
            "client {} did not finish across the crash–restart",
            r.client.0
        );
        assert_counter_sequence(&workload, &r.results);
    }
    let snaps = cluster
        .wait_converged(Duration::from_secs(60))
        .expect("restarted replica catches up and the cluster converges");
    assert_eq!(snaps.len(), 4, "all four replicas alive after restart");
    let r2 = snaps.iter().find(|s| s.id.0 == 2).expect("r2 snapshot");
    assert!(
        !r2.committed_journal().is_empty(),
        "the restarted replica committed state after rejoining"
    );
    cluster.shutdown();
}

/// Satellite regression: `wait_converged` used to return a bare `None`
/// on timeout. An isolated replica (fault plane blocks its links) lags
/// behind; the timeout must now carry every replica's frontier, digest,
/// and view so the failure is debuggable without a rerun.
#[test]
fn wait_converged_timeout_reports_per_replica_diagnostics() {
    let plane = bft_runtime::FaultPlane::new(77);
    let cluster = LoopbackCluster::start_chaos(1, 2, Some(plane.clone()), |_| {});
    plane.isolate(bft_types::NodeId::Replica(ReplicaId(3)));
    let workload = Workload::closed(20);
    let reports = cluster.run_clients(2, workload.clone(), DEADLINE);
    for r in &reports {
        assert_eq!(r.completed, 20, "f=1 tolerates one isolated replica");
        assert_counter_sequence(&workload, &r.results);
    }
    let timeout = cluster
        .wait_converged(Duration::from_secs(2))
        .expect_err("the isolated replica cannot have caught up");
    assert_eq!(timeout.snaps.len(), 4, "all replicas are alive, one lags");
    let diag = timeout.to_string();
    assert!(diag.contains("failed to converge"), "got: {diag}");
    for r in 0..4 {
        assert!(
            diag.contains(&format!("r{r}:")),
            "replica {r} missing: {diag}"
        );
    }
    assert!(diag.contains("frontier="), "frontier missing: {diag}");
    assert!(diag.contains("digest="), "digest missing: {diag}");
    // Heal and the same cluster converges — the timeout was the
    // isolation, not a wedge.
    plane.reconnect(bft_types::NodeId::Replica(ReplicaId(3)));
    cluster
        .wait_converged(Duration::from_secs(60))
        .expect("after reconnection the laggard catches up");
    cluster.shutdown();
}

#[test]
fn forced_client_retransmission_preserves_exactly_once() {
    let cluster = LoopbackCluster::start(1, 2);
    let workload = Workload {
        ops: 40,
        op_bytes: 128,
        read_every: 4,
        mode: LoadMode::Closed {
            think: Duration::ZERO,
        },
        // Far below the round-trip under contention: most operations
        // retransmit at least once, many several times.
        retransmit: Some(Duration::from_millis(2)),
    };
    let reports = cluster.run_clients(2, workload.clone(), DEADLINE);
    let mut any_retransmitted = 0u64;
    for r in &reports {
        assert_eq!(r.completed, 40);
        any_retransmitted += r.retransmitted;
        // The counter sequence is the exactly-once proof: a re-executed
        // INC would skip a value, a dropped one would repeat.
        assert_counter_sequence(&workload, &r.results);
    }
    assert!(
        any_retransmitted > 0,
        "the tiny timeout must actually force retransmissions"
    );
    let snaps = cluster
        .wait_converged(Duration::from_secs(60))
        .expect("replicas converge after the retransmission storm");
    // Exactly-once on the replica side too: write count matches the
    // workload despite duplicate deliveries (max over replicas — one
    // that state-transferred executes fewer locally but converged to
    // the same state above).
    let expected_writes = 2 * workload.writes();
    let max_executed = snaps
        .iter()
        .map(|s| s.stats.requests_executed)
        .max()
        .unwrap();
    assert!(
        max_executed >= expected_writes,
        "executed {max_executed} < {expected_writes}"
    );
    cluster.shutdown();
}
