//! Sharded loopback suite: two independent PBFT groups over live TCP,
//! multiplexed clients routed single-shard, per-shard journal
//! verification, and proof that shard key material is actually disjoint
//! (a frame MAC'd for one group must not verify on the other).

use bft_runtime::client::Workload;
use bft_runtime::loopback::ShardedLoopback;
use bft_types::ShardId;
use std::time::Duration;

const DEADLINE: Duration = Duration::from_secs(120);

#[test]
fn two_shards_commit_independently_with_mux_clients() {
    let clients = 4u32;
    let ops = 40u64;
    let cluster = ShardedLoopback::start(1, clients, 2);

    // The shards derive from the same key_seed but through different
    // shard ids: same deployment file, disjoint key material.
    let t0 = &cluster.shards[0].topo;
    let t1 = &cluster.shards[1].topo;
    assert_eq!(t0.key_seed, t1.key_seed);
    assert_eq!(t0.shard, ShardId(0));
    assert_eq!(t1.shard, ShardId(1));
    assert_eq!(t0.keys().mac_domain, 0, "shard 0 = pre-sharding material");
    assert_ne!(t1.keys().mac_domain, 0);

    // A MAC computed with shard 0's keys must not verify under shard
    // 1's: the cross-group identity-collision guard, checked on the
    // exact key material the live nodes booted with.
    {
        use bft_core::authn::AuthState;
        use bft_types::{NodeId, ReplicaId};
        let rc0 = t0.replica_config();
        let mut s0r0 = AuthState::new(
            rc0.auth,
            NodeId::Replica(ReplicaId(0)),
            rc0.group,
            rc0.num_clients,
            &t0.keys(),
        );
        let rc1 = t1.replica_config();
        let s1r1 = AuthState::new(
            rc1.auth,
            NodeId::Replica(ReplicaId(1)),
            rc1.group,
            rc1.num_clients,
            &t1.keys(),
        );
        let auth = s0r0.mac_to(NodeId::Replica(ReplicaId(1)), b"payload");
        assert!(
            !s1r1.verify(NodeId::Replica(ReplicaId(0)), b"payload", &auth),
            "shard 1 must reject shard 0 MACs"
        );
    }

    // Mux clients drive both shards concurrently; every op completes.
    let reports = cluster.run_clients_mux(clients, 1, &Workload::closed(ops), DEADLINE);
    assert_eq!(reports.len(), 2);
    for (k, shard_reports) in reports.iter().enumerate() {
        assert_eq!(shard_reports.len(), clients as usize);
        for r in shard_reports {
            assert_eq!(
                r.completed, ops,
                "shard {k} client {} incomplete",
                r.client.0
            );
        }
    }

    // Per-shard journal verification: each group converges to one
    // digest at one frontier with agreeing journals — and the two
    // groups executed the same workload shape, so both made progress.
    let snaps = cluster.wait_all_converged(Duration::from_secs(60));
    for (k, shard_snaps) in snaps.iter().enumerate() {
        assert_eq!(shard_snaps.len(), 4, "shard {k} lost a replica");
        assert!(
            shard_snaps[0].last_exec.0 > 0,
            "shard {k} committed nothing"
        );
    }
    cluster.shutdown();
}
