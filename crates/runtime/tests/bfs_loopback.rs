//! BFS over the live loopback cluster: the Andrew script end to end on
//! real TCP sockets, and the §5.1.3 read-only demotion path under real
//! packet loss.
//!
//! The counter suite (`tests/loopback.rs`) checks exactly-once with
//! result arithmetic; here the file system itself is the witness — the
//! script's op-order constraints (create before write before read) only
//! hold if every op executed exactly once in dependency order, and the
//! convergence oracle then requires all four replicas to agree on the
//! journals and the state digest.

use bfs::{generate_script, AndrewConfig, NfsOp, NfsReply};
use bft_net::LinkProfile;
use bft_runtime::bfs_driver::run_andrew_mux;
use bft_runtime::client::{run_mux_sources, NextOp, OpSource};
use bft_runtime::config::ServiceKind;
use bft_runtime::inject::FaultPlane;
use bft_runtime::loopback::LoopbackCluster;
use bft_types::{ClientId, NodeId, ReplicaId};
use bytes::Bytes;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Overall per-test deadline: generous for slow CI machines.
const DEADLINE: Duration = Duration::from_secs(60);

fn bfs_cluster(clients: u32, tentative: bool) -> LoopbackCluster {
    LoopbackCluster::start_with(1, clients, |topo| {
        topo.service = ServiceKind::Bfs;
        topo.tentative_execution = tentative;
    })
}

#[test]
fn andrew_script_completes_over_tcp_and_replicas_converge() {
    let cluster = bfs_cluster(4, true);
    let script = generate_script(&AndrewConfig::tiny());
    let total = script.len() as u64;
    let ids: Vec<ClientId> = (0..4).map(ClientId).collect();
    let run = run_andrew_mux(&ids, cluster.topology(), script, true, false, DEADLINE);
    assert_eq!(run.completed, total, "every scripted op completes");
    let per_phase: u64 = run.phases.iter().map(|p| p.ops).sum();
    assert_eq!(per_phase, total, "phase accounting covers every op");
    let snaps = cluster
        .wait_converged(Duration::from_secs(60))
        .expect("replicas converge to identical BFS state");
    assert_eq!(snaps.len(), 4);
    cluster.shutdown();
}

/// Same script with both §5.1 fast paths off: read-only marking
/// disabled at the client and tentative execution disabled at the
/// replicas. Every op takes the full committed three-phase path and the
/// outcome must be identical.
#[test]
fn andrew_script_without_fast_paths_completes_and_converges() {
    let cluster = bfs_cluster(4, false);
    let script = generate_script(&AndrewConfig::tiny());
    let total = script.len() as u64;
    let ids: Vec<ClientId> = (0..4).map(ClientId).collect();
    let run = run_andrew_mux(&ids, cluster.topology(), script, false, false, DEADLINE);
    assert_eq!(run.completed, total);
    let snaps = cluster
        .wait_converged(Duration::from_secs(60))
        .expect("replicas converge with fast paths disabled");
    assert_eq!(snaps.len(), 4);
    cluster.shutdown();
}

/// A fixed op list for one logical client: issue in order, one in
/// flight, record `(result, retransmissions)` per completion. After the
/// first op completes the fault plane is healed, so a demotion scenario
/// can verify the client keeps working on clean links afterwards.
struct ScriptedClient {
    ops: Vec<(Bytes, bool)>,
    next: usize,
    inflight: bool,
    completions: Vec<(Vec<u8>, u32)>,
    heal_after_first: Option<Arc<FaultPlane>>,
}

impl OpSource for ScriptedClient {
    fn next(&mut self, _slot: usize, _now: Instant) -> NextOp {
        if self.inflight {
            return NextOp::Wait;
        }
        let Some((op, read_only)) = self.ops.get(self.next) else {
            return NextOp::Finished;
        };
        self.inflight = true;
        NextOp::Invoke {
            op: op.clone(),
            read_only: *read_only,
            tag: self.next as u64,
        }
    }

    fn done(
        &mut self,
        _slot: usize,
        tag: u64,
        op: &bft_core::CompletedOp,
        _latency: Duration,
    ) -> Instant {
        assert_eq!(tag as usize, self.next, "ops complete in issue order");
        self.completions
            .push((op.result.to_vec(), op.retransmissions));
        if tag == 0 {
            if let Some(plane) = self.heal_after_first.take() {
                plane.clear_all();
            }
        }
        self.next += 1;
        self.inflight = false;
        Instant::now()
    }

    fn finished(&self) -> bool {
        self.completions.len() == self.ops.len()
    }
}

/// §5.1.3 regression: a read-only request that can never assemble its
/// 2f+1 quorum certificate (two replica→client reply links drop every
/// frame, so at most 2 of 4 replies arrive) must be demoted to the full
/// consensus path by the client's second retransmission — where f+1
/// non-tentative replies suffice — and complete exactly once. The links
/// then heal and the same client's follow-up write + read-only lookup
/// must behave normally, proving demotion left no wedged state behind.
#[test]
fn read_only_starved_of_quorum_is_demoted_and_completes_exactly_once() {
    let plane = FaultPlane::new(9);
    let cluster = LoopbackCluster::start_chaos(1, 1, Some(plane.clone()), |topo| {
        topo.service = ServiceKind::Bfs;
        topo.tentative_execution = false;
    });
    for r in [2u32, 3u32] {
        plane.set_link(
            NodeId::Replica(ReplicaId(r)),
            NodeId::Client(ClientId(0)),
            LinkProfile {
                drop_prob: 1.0,
                ..LinkProfile::clean()
            },
        );
    }

    let root = bfs::ROOT_INO.0;
    let mut source = ScriptedClient {
        ops: vec![
            (NfsOp::GetAttr(root).encode(), true),
            (
                NfsOp::Create(root, "after-demotion".into(), 0o644).encode(),
                false,
            ),
            (NfsOp::Lookup(root, "after-demotion".into()).encode(), true),
        ],
        next: 0,
        inflight: false,
        completions: Vec::new(),
        heal_after_first: Some(plane.clone()),
    };
    let reports = run_mux_sources(
        &[ClientId(0)],
        cluster.topology(),
        &mut source,
        Some(Duration::from_millis(150)),
        DEADLINE,
    );
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0].completed, 3, "all three ops complete");
    assert_eq!(source.completions.len(), 3);

    let (getattr, retrans) = &source.completions[0];
    assert!(
        *retrans >= 2,
        "the read-only op needs at least two retransmissions to demote, saw {retrans}"
    );
    assert!(
        matches!(NfsReply::decode(getattr), Some(NfsReply::Attrs(_))),
        "demoted GETATTR still returns the root's attributes"
    );
    let created = match NfsReply::decode(&source.completions[1].0) {
        Some(NfsReply::Handle(ino)) => ino,
        other => panic!("CREATE after healing failed: {other:?}"),
    };
    match NfsReply::decode(&source.completions[2].0) {
        Some(NfsReply::Handle(ino)) => assert_eq!(
            ino, created,
            "read-only LOOKUP sees the client's own preceding write"
        ),
        other => panic!("LOOKUP after healing failed: {other:?}"),
    }
    assert!(
        plane.total_tally().dropped > 0,
        "the fault plane actually dropped reply frames"
    );

    // Exactly-once at the replicas: all four journals must agree and the
    // state digests match — a doubly-executed demoted request would fork
    // the file system's meta state.
    let snaps = cluster
        .wait_converged(Duration::from_secs(60))
        .expect("replicas converge after demotion");
    assert_eq!(snaps.len(), 4);
    cluster.shutdown();
}
