//! Durable-storage integration tests: loopback clusters with
//! `storage = wal`, crashed and recovered from their on-disk state.
//!
//! The four-part oracle is the same one every harness uses — identical
//! journals wherever they overlap, exactly-once execution (the counter
//! sequence), read-your-writes (closed-loop counter reads), and
//! liveness (workloads complete) — but here the recovering replicas
//! rebuild from WAL segments and compressed checkpoint snapshots
//! instead of living memory. The full-cluster test kills *every*
//! replica at once, so there is no live peer to state-transfer from:
//! any recovered state is proof the disk path works.

use bft_runtime::client::{run_client, run_workers, LoadMode, Workload};
use bft_runtime::config::StorageKind;
use bft_runtime::loopback::LoopbackCluster;
use bft_types::{ClientId, ReplicaId};
use std::path::{Path, PathBuf};
use std::time::Duration;

const DEADLINE: Duration = Duration::from_secs(60);

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bft-wal-loopback-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn wal_cluster(dir: &Path, clients: u32) -> LoopbackCluster {
    let data_dir = dir.to_str().expect("utf8 tempdir").to_string();
    LoopbackCluster::start_with(1, clients, move |topo| {
        topo.storage = StorageKind::Wal;
        topo.data_dir = Some(data_dir);
    })
}

/// The k-th result of a closed-loop counter client must be exactly the
/// number of writes so far: exactly-once *and* read-your-writes.
fn assert_counter_sequence(workload: &Workload, results: &[(bft_types::Timestamp, Vec<u8>)]) {
    let mut writes = 0u64;
    for (k, (_, result)) in results.iter().enumerate() {
        let (_, read_only) = workload.op(k as u64);
        if !read_only {
            writes += 1;
        }
        let got = u64::from_le_bytes(result.as_slice().try_into().expect("8-byte counter"));
        assert_eq!(
            got, writes,
            "op {k} (read_only={read_only}) returned {got}, expected {writes}: \
             a duplicate or lost execution"
        );
    }
}

/// A backup is killed mid-workload and restarted on its WAL. The
/// workload never stalls (f=1 tolerates the gap), the restarted node
/// rejoins, and all four replicas converge to agreeing journals.
#[test]
fn killed_replica_recovers_from_wal_mid_workload() {
    let dir = tempdir("single");
    let mut cluster = wal_cluster(&dir, 3);
    let topo = cluster.topo.clone();
    let workload = Workload {
        ops: 120,
        op_bytes: 128,
        read_every: 4,
        mode: LoadMode::Closed {
            think: Duration::from_millis(5),
        },
        retransmit: None,
    };
    let reports = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..3)
            .map(|c| {
                let topo = &topo;
                let workload = workload.clone();
                scope.spawn(move || run_client(ClientId(c), topo, &workload, DEADLINE))
            })
            .collect();
        // Let a prefix commit, fail-stop a backup, bring it back from
        // its WAL while the workload is still running.
        std::thread::sleep(Duration::from_millis(300));
        cluster.kill(ReplicaId(2));
        std::thread::sleep(Duration::from_millis(200));
        cluster.restart(ReplicaId(2));
        workers
            .into_iter()
            .map(|w| w.join().expect("client worker"))
            .collect::<Vec<_>>()
    });
    for r in &reports {
        assert_eq!(r.completed, 120, "client {} fell short", r.client.0);
        assert_counter_sequence(&workload, &r.results);
    }
    let snaps = cluster
        .wait_converged(Duration::from_secs(60))
        .expect("all four replicas converge, the restarted one included");
    assert_eq!(snaps.len(), 4);
    // The killed replica really wrote a WAL to come back from.
    let r2 = dir.join("replica-2");
    let segments = std::fs::read_dir(&r2)
        .expect("replica-2 data dir exists")
        .count();
    assert!(segments > 0, "replica-2 left WAL files in {}", r2.display());
    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Every replica is killed at once, then all four are restarted. With
/// no surviving peer, the recovered frontier can only come from the
/// WAL + snapshot on disk; a fresh workload afterwards proves the
/// recovered cluster is live and still exactly-once.
#[test]
fn full_cluster_crash_recovers_committed_state_from_disk() {
    let dir = tempdir("full");
    let mut cluster = wal_cluster(&dir, 8);
    // Phase 1: commit well past a checkpoint boundary (interval 16).
    let workload = Workload::closed(60);
    let ids: Vec<ClientId> = (0..3).map(ClientId).collect();
    for (c, outcome) in run_workers(&ids, |c| run_client(c, &cluster.topo, &workload, DEADLINE)) {
        let report = outcome.unwrap_or_else(|why| panic!("client {} died: {why}", c.0));
        assert_eq!(report.completed, 60, "client {} fell short", c.0);
        assert_counter_sequence(&workload, &report.results);
    }
    let before = cluster
        .wait_converged(Duration::from_secs(60))
        .expect("phase-1 convergence");
    let frontier_before = before[0].committed_frontier;
    let journal_before = before[0].committed_journal();
    assert!(frontier_before.0 > 0, "phase 1 committed something");

    // The crash: all four at once. Nothing survives in memory.
    for r in 0..4 {
        cluster.kill(ReplicaId(r));
    }
    for r in 0..4 {
        cluster.restart(ReplicaId(r));
    }
    let after = cluster
        .wait_converged(Duration::from_secs(60))
        .expect("recovered cluster converges");
    assert_eq!(after.len(), 4);
    assert!(
        after[0].committed_frontier >= frontier_before,
        "disk recovery kept the committed prefix ({} < {})",
        after[0].committed_frontier.0,
        frontier_before.0
    );
    // Recovered journals agree with pre-crash history wherever they
    // overlap. (They need not contain every old seq: recovery installs
    // the stable snapshot and re-executes only the log above it, so
    // seqs at or below the checkpoint base live in the snapshot, not
    // the journal.)
    let journal_after = after[0].committed_journal();
    for (seq, digest) in &journal_before {
        if let Some(recovered) = journal_after.get(seq) {
            assert_eq!(
                recovered, digest,
                "recovered journal rewrote history at seq {seq}"
            );
        }
    }
    // And if nothing new committed, the recovered state is bit-identical.
    if after[0].committed_frontier == frontier_before {
        assert_eq!(
            after[0].state_digest, before[0].state_digest,
            "same frontier, different state"
        );
    }

    // Phase 2: fresh client principals (4..7 — reusing 0..3 would be
    // deduplicated by the recovered reply table, which is the point of
    // persisting it) prove the recovered cluster is live.
    let workload2 = Workload::closed(40);
    let ids: Vec<ClientId> = (4..8).map(ClientId).collect();
    for (c, outcome) in run_workers(&ids, |c| run_client(c, &cluster.topo, &workload2, DEADLINE)) {
        let report = outcome.unwrap_or_else(|why| panic!("client {} died: {why}", c.0));
        assert_eq!(report.completed, 40, "client {} fell short", c.0);
        assert_counter_sequence(&workload2, &report.results);
    }
    cluster
        .wait_converged(Duration::from_secs(60))
        .expect("phase-2 convergence");
    cluster.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
