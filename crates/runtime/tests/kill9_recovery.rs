//! Process-level crash recovery: real `pbft-node` processes, real
//! SIGKILL, recovery from the on-disk WAL + checkpoint snapshots.
//!
//! The loopback tests kill node *threads*; this one kills node
//! *processes* with `Child::kill()` (SIGKILL on unix — no atexit, no
//! flush, no farewell), which is the crash model the storage engine
//! exists for. Four `pbft-node` binaries run a `storage = wal` cluster
//! on fixed loopback ports; the test process drives a client workload
//! over TCP, SIGKILLs a replica mid-workload, respawns it, and then
//! SIGKILLs the *entire cluster* and restarts it — after which any
//! recovered state can only have come from disk.
//!
//! Oracles, via each node's `--journal-file` dump (atomic rename, so a
//! reader never sees a torn file) and the clients' own result streams:
//! identical journals wherever they overlap, exactly-once execution,
//! read-your-writes, and liveness.
//!
//! `KILL9_DATA_DIR` overrides where node state and logs live (CI sets
//! it to upload the directory as an artifact when the test fails).

use bft_runtime::client::{run_client, run_workers, LoadMode, Workload};
use bft_runtime::config::{StorageKind, Topology};
use bft_types::ClientId;
use std::collections::BTreeMap;
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const DEADLINE: Duration = Duration::from_secs(60);

fn data_dir() -> PathBuf {
    match std::env::var("KILL9_DATA_DIR") {
        Ok(dir) => PathBuf::from(dir),
        Err(_) => std::env::temp_dir().join(format!("bft-kill9-{}", std::process::id())),
    }
}

/// Picks `n` distinct free loopback ports by binding and dropping
/// listeners. Racy in principle; in practice the ports stay free for
/// the instant before the nodes bind them.
fn free_ports(n: usize) -> Vec<u16> {
    let listeners: Vec<TcpListener> = (0..n)
        .map(|_| TcpListener::bind("127.0.0.1:0").expect("bind"))
        .collect();
    listeners
        .iter()
        .map(|l| l.local_addr().expect("addr").port())
        .collect()
}

fn spawn_node(dir: &Path, config: &Path, id: u32) -> Child {
    let journal = dir.join(format!("journal-{id}.txt"));
    let log = std::fs::File::create(dir.join(format!("node-{id}.log"))).expect("node log");
    Command::new(env!("CARGO_BIN_EXE_pbft-node"))
        .arg("--config")
        .arg(config)
        .arg("--id")
        .arg(id.to_string())
        .arg("--journal-file")
        .arg(&journal)
        .stdout(Stdio::from(log.try_clone().expect("clone log")))
        .stderr(Stdio::from(log))
        .spawn()
        .expect("spawn pbft-node")
}

/// One parsed `--journal-file` dump: the committed frontier, the state
/// digest, and the committed `seq -> digest-hex` journal.
struct Dump {
    frontier: u64,
    digest: String,
    journal: BTreeMap<u64, String>,
}

fn read_dump(path: &Path) -> Option<Dump> {
    let text = std::fs::read_to_string(path).ok()?;
    let mut lines = text.lines();
    let header = lines.next()?;
    let mut frontier = None;
    let mut digest = None;
    for field in header.split_whitespace() {
        if let Some(v) = field.strip_prefix("frontier=") {
            frontier = v.parse().ok();
        }
        if let Some(v) = field.strip_prefix("digest=") {
            digest = Some(v.to_string());
        }
    }
    let mut journal = BTreeMap::new();
    for line in lines {
        let (seq, d) = line.split_once(' ')?;
        journal.insert(seq.parse().ok()?, d.to_string());
    }
    Some(Dump {
        frontier: frontier?,
        digest: digest?,
        journal,
    })
}

/// Waits until all four journal dumps agree: same frontier (at least
/// `floor`), same digest, and overlapping journal entries identical.
/// Panics with the per-node picture on timeout.
fn wait_dumps_converged(dir: &Path, floor: u64, timeout: Duration) -> Vec<Dump> {
    let started = Instant::now();
    loop {
        let dumps: Vec<Option<Dump>> = (0..4)
            .map(|id| read_dump(&dir.join(format!("journal-{id}.txt"))))
            .collect();
        if let [Some(a), Some(b), Some(c), Some(d)] = &dumps[..] {
            let all = [a, b, c, d];
            for x in &all {
                for y in &all {
                    for (seq, dx) in &x.journal {
                        if let Some(dy) = y.journal.get(seq) {
                            assert_eq!(dx, dy, "journals disagree at seq {seq}");
                        }
                    }
                }
            }
            let converged = all
                .iter()
                .all(|x| x.frontier == a.frontier && x.digest == a.digest && x.frontier >= floor);
            if converged {
                return dumps.into_iter().map(|d| d.unwrap()).collect();
            }
        }
        assert!(
            started.elapsed() < timeout,
            "journal dumps failed to converge (floor {floor}): {:?}",
            dumps
                .iter()
                .map(|d| d.as_ref().map(|d| (d.frontier, d.digest.clone())))
                .collect::<Vec<_>>()
        );
        std::thread::sleep(Duration::from_millis(200));
    }
}

fn assert_counter_sequence(workload: &Workload, results: &[(bft_types::Timestamp, Vec<u8>)]) {
    let mut writes = 0u64;
    for (k, (_, result)) in results.iter().enumerate() {
        let (_, read_only) = workload.op(k as u64);
        if !read_only {
            writes += 1;
        }
        let got = u64::from_le_bytes(result.as_slice().try_into().expect("8-byte counter"));
        assert_eq!(
            got, writes,
            "op {k} (read_only={read_only}) returned {got}, expected {writes}"
        );
    }
}

#[test]
fn sigkilled_processes_recover_from_disk() {
    let dir = data_dir();
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create data dir");

    let ports = free_ports(4);
    let mut topo = Topology::localhost(1, 8, ports[0]);
    topo.set_replicas(
        ports
            .iter()
            .map(|p| format!("127.0.0.1:{p}").parse().expect("addr"))
            .collect(),
    );
    topo.checkpoint_interval = 16;
    topo.storage = StorageKind::Wal;
    topo.data_dir = Some(dir.to_str().expect("utf8 dir").to_string());
    let config = dir.join("cluster.conf");
    std::fs::write(&config, topo.to_config_string()).expect("write config");

    let mut nodes: Vec<Child> = (0..4).map(|id| spawn_node(&dir, &config, id)).collect();
    // Give the processes a moment to bind before clients dial.
    std::thread::sleep(Duration::from_millis(500));

    // Phase 1: workload spanning a SIGKILL + respawn of a backup.
    let workload = Workload {
        ops: 120,
        op_bytes: 128,
        read_every: 4,
        mode: LoadMode::Closed {
            think: Duration::from_millis(5),
        },
        retransmit: None,
    };
    let reports = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..3)
            .map(|c| {
                let topo = &topo;
                let workload = workload.clone();
                scope.spawn(move || run_client(ClientId(c), topo, &workload, DEADLINE))
            })
            .collect();
        std::thread::sleep(Duration::from_millis(400));
        // SIGKILL replica 2 mid-workload; no flush, no goodbye.
        nodes[2].kill().expect("SIGKILL replica 2");
        nodes[2].wait().expect("reap replica 2");
        std::thread::sleep(Duration::from_millis(300));
        nodes[2] = spawn_node(&dir, &config, 2);
        workers
            .into_iter()
            .map(|w| w.join().expect("client worker"))
            .collect::<Vec<_>>()
    });
    for r in &reports {
        assert_eq!(r.completed, 120, "client {} fell short", r.client.0);
        assert_counter_sequence(&workload, &r.results);
    }
    let dumps = wait_dumps_converged(&dir, 1, DEADLINE);
    let frontier_before = dumps[0].frontier;
    let digest_before = dumps[0].digest.clone();

    // Phase 2: SIGKILL the whole cluster. With every process dead, the
    // only copy of the state is on disk.
    for node in &mut nodes {
        node.kill().expect("SIGKILL node");
        node.wait().expect("reap node");
    }
    for (id, path) in (0..4).map(|id| (id, dir.join(format!("journal-{id}.txt")))) {
        std::fs::remove_file(&path).unwrap_or_else(|e| panic!("clear dump {id}: {e}"));
    }
    let nodes: Vec<Child> = (0..4).map(|id| spawn_node(&dir, &config, id)).collect();
    let recovered = wait_dumps_converged(&dir, frontier_before, DEADLINE);
    assert_eq!(
        (recovered[0].frontier, &recovered[0].digest),
        (frontier_before, &digest_before),
        "full-cluster SIGKILL recovery lost or rewrote committed state"
    );

    // Phase 3: the recovered cluster is live — fresh principals so the
    // recovered reply table doesn't (correctly) deduplicate them away.
    let workload2 = Workload::closed(40);
    let ids: Vec<ClientId> = (4..8).map(ClientId).collect();
    for (c, outcome) in run_workers(&ids, |c| run_client(c, &topo, &workload2, DEADLINE)) {
        let report = outcome.unwrap_or_else(|why| panic!("client {} died: {why}", c.0));
        assert_eq!(report.completed, 40, "client {} fell short", c.0);
        assert_counter_sequence(&workload2, &report.results);
    }
    wait_dumps_converged(&dir, frontier_before + 1, DEADLINE);

    for mut node in nodes {
        let _ = node.kill();
        let _ = node.wait();
    }
    // Keep the directory on failure (CI uploads it); clean up on success.
    let _ = std::fs::remove_dir_all(&dir);
}
