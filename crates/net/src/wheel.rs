//! The discrete-event scheduler: a two-level timer wheel over a slab
//! event arena.
//!
//! The simulator's previous scheduler was a `BinaryHeap<Reverse<Event>>`:
//! every push and pop paid `O(log n)` comparisons on a heap whose nodes
//! move through memory, and the allocation for each event was handed to
//! the global allocator and back. This structure replaces it with the
//! classic timer-wheel design (Varghese & Lauck), adapted to virtual
//! time:
//!
//! * **Near wheel** — a ring of [`NEAR_SLOTS`] slots, one per virtual
//!   microsecond tick. An event due within the window lands in its slot
//!   in O(1); every event in a slot shares the same timestamp, so the
//!   slot's FIFO list *is* `(time, push-order)` order — the deterministic
//!   tie-break the fingerprint tests pin down. A 64-bit occupancy bitmap
//!   finds the next non-empty slot with a couple of `trailing_zeros`.
//! * **Overflow level** — events beyond the window (view-change timers,
//!   watchdogs, status periods) wait in an ordered overflow heap keyed by
//!   `(time, push-order)`. Whenever the cursor advances, everything that
//!   slid into the window is promoted into its slot, preserving FIFO
//!   order. The overflow holds tens of timers, not the tens of thousands
//!   of deliveries the old heap carried.
//! * **Slab arena** — event nodes live in one `Vec`, chained by index,
//!   and freed slots are recycled through a free list: steady-state
//!   operation allocates nothing.
//! * **Lazy cancellation** — [`EventWheel::cancel`] never touches the
//!   queue structure. It flips a tombstone on the slab node (the
//!   generation stamp in the [`EventKey`] guards against slot reuse) and
//!   the scan reaps tombstones when it reaches them.

use bft_types::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Near-wheel width in bits.
const NEAR_BITS: u32 = 12;
/// Number of near-wheel slots: one per virtual-time microsecond, so the
/// wheel covers a ~4.1 ms window — wider than any simulated network
/// latency, narrower than the protocol timers that go to overflow.
pub const NEAR_SLOTS: u64 = 1 << NEAR_BITS;
const NEAR_MASK: u64 = NEAR_SLOTS - 1;

/// Sentinel index for "no node".
const NIL: u32 = u32::MAX;

/// Handle to a scheduled event, for lazy cancellation. Generation-stamped:
/// a key outlives its event harmlessly (cancel of a popped or recycled
/// slot is a no-op returning `false`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EventKey {
    idx: u32,
    gen: u32,
}

struct Node<T> {
    /// Absolute virtual-time tick.
    at: u64,
    /// Global push order; ties on `at` pop in `seq` order.
    seq: u64,
    /// Bumped on every recycle; pairs with [`EventKey::gen`].
    gen: u32,
    /// Tombstone: reaped by the scan, never dispatched.
    canceled: bool,
    /// Next node in the same near slot (intrusive FIFO), or [`NIL`].
    next: u32,
    payload: Option<T>,
}

#[derive(Clone, Copy)]
struct SlotList {
    head: u32,
    tail: u32,
}

impl SlotList {
    const EMPTY: SlotList = SlotList {
        head: NIL,
        tail: NIL,
    };
}

/// Counters for reports and tests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WheelStats {
    /// Events pushed.
    pub pushed: u64,
    /// Events popped (dispatched).
    pub popped: u64,
    /// Cancellations accepted (tombstones written).
    pub canceled: u64,
    /// Tombstones reaped by the scan or promotion.
    pub reaped: u64,
    /// Events promoted from the overflow level into the near wheel.
    pub promoted: u64,
    /// High-water mark of the slab arena.
    pub slab_high_water: usize,
}

/// A deterministic future-event queue ordered by `(time, push order)`.
pub struct EventWheel<T> {
    slab: Vec<Node<T>>,
    free: Vec<u32>,
    near: Vec<SlotList>,
    /// One bit per near slot; set while the slot's list is non-empty.
    occupied: Vec<u64>,
    /// Current tick: every event at a strictly earlier tick has been
    /// popped or reaped. The near window is `[cursor, cursor + NEAR_SLOTS)`.
    cursor: u64,
    /// Events beyond the near window, ordered by `(at, seq, slab index)`.
    overflow: BinaryHeap<Reverse<(u64, u64, u32)>>,
    /// Nodes currently linked into the near wheel (tombstones included).
    near_count: usize,
    /// Scheduled, not-yet-canceled, not-yet-popped events.
    live: usize,
    next_seq: u64,
    stats: WheelStats,
}

impl<T> Default for EventWheel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventWheel<T> {
    /// Creates an empty wheel with the cursor at virtual time zero.
    pub fn new() -> Self {
        EventWheel {
            slab: Vec::new(),
            free: Vec::new(),
            near: vec![SlotList::EMPTY; NEAR_SLOTS as usize],
            occupied: vec![0u64; (NEAR_SLOTS / 64) as usize],
            cursor: 0,
            overflow: BinaryHeap::new(),
            near_count: 0,
            live: 0,
            next_seq: 0,
            stats: WheelStats::default(),
        }
    }

    /// Number of live (scheduled, uncanceled) events.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> WheelStats {
        self.stats
    }

    /// Schedules `payload` at `at`, returning a key for lazy cancellation.
    ///
    /// # Panics
    ///
    /// Panics when `at` lies before an already-popped tick: the simulator
    /// never schedules into the past, and silently accepting one would
    /// corrupt slot aliasing.
    pub fn push(&mut self, at: SimTime, payload: T) -> EventKey {
        self.push_tick(at.0, payload)
    }

    /// The earliest tick a new event may legally be scheduled at: the
    /// tick of the last popped event. Real-time adapters clamp "now" to
    /// this floor so a clock read taken just before a pop cannot land in
    /// the past.
    pub fn floor_tick(&self) -> u64 {
        self.cursor
    }

    /// Tick-keyed [`EventWheel::push`]: the wheel is agnostic to what a
    /// tick means — the simulator keys it by virtual microseconds
    /// ([`SimTime`]), the real-network runtime by monotonic microseconds
    /// since process start.
    pub fn push_tick(&mut self, tick: u64, payload: T) -> EventKey {
        let at = SimTime(tick);
        assert!(
            at.0 >= self.cursor,
            "event scheduled in the past ({} < cursor {})",
            at.0,
            self.cursor
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        let idx = self.alloc(at.0, seq, payload);
        let gen = self.slab[idx as usize].gen;
        self.live += 1;
        self.stats.pushed += 1;
        if at.0 < self.cursor + NEAR_SLOTS {
            self.link(idx);
        } else {
            self.overflow.push(Reverse((at.0, seq, idx)));
        }
        EventKey { idx, gen }
    }

    /// Lazily cancels a scheduled event: O(1), no queue surgery. Returns
    /// true when the key still referred to a live event.
    pub fn cancel(&mut self, key: EventKey) -> bool {
        let Some(node) = self.slab.get_mut(key.idx as usize) else {
            return false;
        };
        if node.gen != key.gen || node.canceled || node.payload.is_none() {
            return false;
        }
        node.canceled = true;
        self.live -= 1;
        self.stats.canceled += 1;
        true
    }

    /// The timestamp of the next live event, without removing it.
    ///
    /// Unlike [`EventWheel::pop`], peeking never commits the cursor: a
    /// caller may peek a far-future event, decide it is past its
    /// deadline, and still push nearer events afterwards (the
    /// `run_until(deadline)` pattern). The only mutation is reaping
    /// canceled entries off the top of the overflow heap.
    pub fn next_at(&mut self) -> Option<SimTime> {
        self.next_tick().map(SimTime)
    }

    /// Tick-keyed [`EventWheel::next_at`].
    pub fn next_tick(&mut self) -> Option<u64> {
        if self.live == 0 {
            return None;
        }
        // Earliest live near event: walk occupied slots in tick order,
        // skipping tombstones without unlinking them. Live near events
        // always precede everything in overflow (the promote invariant).
        let mut offset = 0;
        while self.near_count > 0 && offset < NEAR_SLOTS {
            let Some(d) = self.occupied_distance_from(offset) else {
                break;
            };
            let slot = ((self.cursor + d) & NEAR_MASK) as usize;
            let mut idx = self.near[slot].head;
            while idx != NIL {
                let node = &self.slab[idx as usize];
                if !node.canceled {
                    return Some(node.at);
                }
                idx = node.next;
            }
            offset = d + 1;
        }
        // Near wheel holds nothing live: the answer is the earliest live
        // overflow entry.
        while let Some(&Reverse((at, _, idx))) = self.overflow.peek() {
            if self.slab[idx as usize].canceled {
                self.overflow.pop();
                self.recycle(idx);
                self.stats.reaped += 1;
                continue;
            }
            return Some(at);
        }
        unreachable!("live > 0 events must be linked or in overflow")
    }

    /// Removes and returns the next live event in `(time, push order)`.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.pop_tick().map(|(tick, v)| (SimTime(tick), v))
    }

    /// Tick-keyed [`EventWheel::pop`].
    pub fn pop_tick(&mut self) -> Option<(u64, T)> {
        if !self.position() {
            return None;
        }
        let slot = (self.cursor & NEAR_MASK) as usize;
        let idx = self.near[slot].head;
        self.unlink_head(slot);
        let node = &mut self.slab[idx as usize];
        debug_assert_eq!(node.at, self.cursor);
        let payload = node.payload.take().expect("live node has payload");
        let at = node.at;
        self.recycle(idx);
        self.live -= 1;
        self.stats.popped += 1;
        Some((at, payload))
    }

    /// Advances `cursor` to the tick of the next live event, reaping
    /// tombstones and promoting overflow entries on the way. Returns
    /// false when no live event exists.
    fn position(&mut self) -> bool {
        loop {
            if self.live == 0 {
                return false;
            }
            if self.near_count == 0 {
                // Whole window empty: jump straight to the earliest
                // overflow tick and promote the batch that becomes near.
                let &Reverse((at, _, _)) = self
                    .overflow
                    .peek()
                    .expect("live events must be linked or in overflow");
                debug_assert!(at >= self.cursor + NEAR_SLOTS);
                self.cursor = at;
                self.promote();
                continue;
            }
            let d = self.next_occupied_distance();
            if d > 0 {
                self.cursor += d;
                // The window slid: promote everything that entered it so
                // pushes (and this scan) see a complete slot.
                self.promote();
            }
            let slot = (self.cursor & NEAR_MASK) as usize;
            let idx = self.near[slot].head;
            debug_assert_ne!(idx, NIL);
            if self.slab[idx as usize].canceled {
                self.unlink_head(slot);
                self.recycle(idx);
                self.stats.reaped += 1;
                continue;
            }
            return true;
        }
    }

    /// Moves every overflow event that now falls inside the near window
    /// into its slot, in `(at, seq)` order (preserving slot FIFO).
    fn promote(&mut self) {
        let horizon = self.cursor + NEAR_SLOTS;
        while let Some(&Reverse((at, _, _))) = self.overflow.peek() {
            if at >= horizon {
                break;
            }
            let Reverse((_, _, idx)) = self.overflow.pop().expect("peeked");
            if self.slab[idx as usize].canceled {
                self.recycle(idx);
                self.stats.reaped += 1;
                continue;
            }
            self.link(idx);
            self.stats.promoted += 1;
        }
    }

    /// Circular distance from the cursor's slot to the first occupied
    /// slot. Caller guarantees `near_count > 0`.
    fn next_occupied_distance(&self) -> u64 {
        self.occupied_distance_from(0)
            .expect("near_count > 0 means some slot bit is set")
    }

    /// Distance (≥ `from`) from the cursor's slot to the first occupied
    /// slot within one window, or `None` when no slot at distance
    /// `from..NEAR_SLOTS` is occupied.
    fn occupied_distance_from(&self, from: u64) -> Option<u64> {
        if from >= NEAR_SLOTS {
            return None;
        }
        let words = self.occupied.len();
        let start = ((self.cursor + from) & NEAR_MASK) as usize;
        let (w0, b0) = (start / 64, start % 64);
        let first = self.occupied[w0] >> b0;
        if first != 0 {
            let d = from + first.trailing_zeros() as u64;
            return (d < NEAR_SLOTS).then_some(d);
        }
        let mut d = from + (64 - b0) as u64;
        let mut w = (w0 + 1) % words;
        while d < from + NEAR_SLOTS {
            let bits = self.occupied[w];
            if bits != 0 {
                let hit = d + bits.trailing_zeros() as u64;
                return (hit < NEAR_SLOTS).then_some(hit);
            }
            d += 64;
            w = (w + 1) % words;
        }
        None
    }

    fn alloc(&mut self, at: u64, seq: u64, payload: T) -> u32 {
        if let Some(idx) = self.free.pop() {
            let node = &mut self.slab[idx as usize];
            node.at = at;
            node.seq = seq;
            node.canceled = false;
            node.next = NIL;
            node.payload = Some(payload);
            idx
        } else {
            let idx = self.slab.len() as u32;
            assert!(idx != NIL, "slab full");
            self.slab.push(Node {
                at,
                seq,
                gen: 0,
                canceled: false,
                next: NIL,
                payload: Some(payload),
            });
            self.stats.slab_high_water = self.slab.len();
            idx
        }
    }

    /// Returns a node to the free list, bumping its generation so stale
    /// [`EventKey`]s can never touch the recycled slot.
    fn recycle(&mut self, idx: u32) {
        let node = &mut self.slab[idx as usize];
        node.gen = node.gen.wrapping_add(1);
        node.payload = None;
        node.next = NIL;
        self.free.push(idx);
    }

    /// Appends a node to its near slot's FIFO list.
    fn link(&mut self, idx: u32) {
        let at = self.slab[idx as usize].at;
        debug_assert!(at >= self.cursor && at < self.cursor + NEAR_SLOTS);
        let slot = (at & NEAR_MASK) as usize;
        let list = &mut self.near[slot];
        if list.tail == NIL {
            list.head = idx;
            self.occupied[slot / 64] |= 1 << (slot % 64);
        } else {
            self.slab[list.tail as usize].next = idx;
            // Same slot => same tick: FIFO order is (at, seq) order.
            debug_assert!(self.slab[list.tail as usize].at == at);
            debug_assert!(self.slab[list.tail as usize].seq < self.slab[idx as usize].seq);
        }
        self.near[slot].tail = idx;
        self.near_count += 1;
    }

    /// Detaches the head node of a slot (does not recycle it).
    fn unlink_head(&mut self, slot: usize) {
        let idx = self.near[slot].head;
        debug_assert_ne!(idx, NIL);
        let next = self.slab[idx as usize].next;
        self.near[slot].head = next;
        if next == NIL {
            self.near[slot].tail = NIL;
            self.occupied[slot / 64] &= !(1 << (slot % 64));
        }
        self.near_count -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(w: &mut EventWheel<u32>) -> Vec<(u64, u32)> {
        let mut out = Vec::new();
        while let Some((at, v)) = w.pop() {
            out.push((at.0, v));
        }
        out
    }

    #[test]
    fn pops_in_time_then_fifo_order() {
        let mut w = EventWheel::new();
        w.push(SimTime(5), 1);
        w.push(SimTime(3), 2);
        w.push(SimTime(5), 3);
        w.push(SimTime(3), 4);
        assert_eq!(w.len(), 4);
        assert_eq!(drain(&mut w), vec![(3, 2), (3, 4), (5, 1), (5, 3)]);
        assert!(w.is_empty());
    }

    #[test]
    fn overflow_events_promote_in_order() {
        let mut w = EventWheel::new();
        // Far beyond the near window, same tick: FIFO must survive the
        // overflow round-trip.
        let far = NEAR_SLOTS * 3 + 17;
        w.push(SimTime(far), 1);
        w.push(SimTime(far), 2);
        w.push(SimTime(2), 0);
        w.push(SimTime(far + 1), 3);
        assert_eq!(
            drain(&mut w),
            vec![(2, 0), (far, 1), (far, 2), (far + 1, 3)]
        );
        assert_eq!(w.stats().promoted, 3);
    }

    #[test]
    fn push_after_pop_same_tick_stays_fifo() {
        let mut w = EventWheel::new();
        w.push(SimTime(10), 1);
        assert_eq!(w.pop().unwrap(), (SimTime(10), 1));
        // Cursor now at tick 10; same-tick push is legal and pops next.
        w.push(SimTime(10), 2);
        w.push(SimTime(11), 3);
        assert_eq!(drain(&mut w), vec![(10, 2), (11, 3)]);
    }

    #[test]
    fn cancel_is_lazy_and_generation_guarded() {
        let mut w = EventWheel::new();
        let a = w.push(SimTime(4), 1);
        let b = w.push(SimTime(4), 2);
        w.push(SimTime(9), 3);
        assert!(w.cancel(a));
        assert!(!w.cancel(a), "double cancel is a no-op");
        assert_eq!(w.len(), 2);
        assert_eq!(w.pop().unwrap(), (SimTime(4), 2));
        // The popped/reaped slots recycle; stale keys must not bite.
        let c = w.push(SimTime(9), 4);
        assert!(!w.cancel(a), "stale key, recycled slot");
        assert!(!w.cancel(b), "key to an already-reaped tombstone");
        assert!(w.cancel(c));
        assert_eq!(drain(&mut w), vec![(9, 3)]);
        // `c` trails as an unreaped tombstone (pop short-circuits once no
        // live event remains); the next activity at its slot reaps it.
        assert_eq!(w.stats().reaped, 1);
        w.push(SimTime(9), 5);
        assert_eq!(w.pop().unwrap(), (SimTime(9), 5));
        assert_eq!(w.stats().reaped, 2);
        assert_eq!(w.stats().canceled, 2);
    }

    #[test]
    fn cancel_in_overflow_is_reaped_at_promotion() {
        let mut w = EventWheel::new();
        let far = NEAR_SLOTS * 2;
        let k = w.push(SimTime(far), 1);
        w.push(SimTime(far + 2), 2);
        assert!(w.cancel(k));
        assert_eq!(drain(&mut w), vec![(far + 2, 2)]);
        assert_eq!(w.stats().reaped, 1);
    }

    #[test]
    fn next_at_peeks_without_removing() {
        let mut w = EventWheel::new();
        assert_eq!(w.next_at(), None);
        w.push(SimTime(7), 1);
        assert_eq!(w.next_at(), Some(SimTime(7)));
        assert_eq!(w.next_at(), Some(SimTime(7)), "peek is idempotent");
        assert_eq!(w.len(), 1);
        assert_eq!(w.pop().unwrap(), (SimTime(7), 1));
        assert_eq!(w.next_at(), None);
    }

    #[test]
    fn next_at_skips_canceled_heads() {
        let mut w = EventWheel::new();
        let k = w.push(SimTime(3), 1);
        w.push(SimTime(800), 2);
        w.cancel(k);
        assert_eq!(w.next_at(), Some(SimTime(800)));
        assert_eq!(w.pop().unwrap(), (SimTime(800), 2));
    }

    #[test]
    fn slab_recycles_slots() {
        let mut w = EventWheel::new();
        for round in 0..100u64 {
            for i in 0..10u32 {
                w.push(SimTime(round * 50 + i as u64), i);
            }
            assert_eq!(drain(&mut w).len(), 10);
        }
        assert_eq!(w.stats().slab_high_water, 10, "arena reuses slots");
        assert_eq!(w.stats().pushed, 1000);
    }

    #[test]
    fn window_boundary_single_tick() {
        let mut w = EventWheel::new();
        // Exactly the last near tick vs the first overflow tick.
        w.push(SimTime(NEAR_SLOTS - 1), 1);
        w.push(SimTime(NEAR_SLOTS), 2);
        assert_eq!(w.stats().pushed, 2);
        assert_eq!(drain(&mut w), vec![(NEAR_SLOTS - 1, 1), (NEAR_SLOTS, 2)]);
        assert_eq!(w.stats().promoted, 1);
    }

    #[test]
    #[should_panic(expected = "scheduled in the past")]
    fn pushing_into_the_past_panics() {
        let mut w = EventWheel::new();
        w.push(SimTime(100), 1);
        let _ = w.pop();
        w.push(SimTime(99), 2);
    }

    #[test]
    fn peek_does_not_commit_the_cursor() {
        // The run_until(deadline) pattern: peek a far-future event,
        // decide it is past the deadline, then schedule nearer work.
        // Peeking must not advance the cursor (which would make the
        // nearer push "in the past") or promote overflow into slots that
        // alias once nearer events arrive.
        let mut w = EventWheel::new();
        w.push(SimTime(50), 1);
        assert_eq!(w.pop().unwrap(), (SimTime(50), 1));
        let far = 50 + NEAR_SLOTS * 5 + 3;
        w.push(SimTime(far), 2);
        assert_eq!(w.next_at(), Some(SimTime(far)), "peeked past deadline");
        w.push(SimTime(60), 3); // would panic if the peek moved the cursor
        w.push(SimTime(far), 4);
        assert_eq!(
            drain(&mut w),
            vec![(60, 3), (far, 2), (far, 4)],
            "order and same-tick FIFO survive the peek"
        );
    }

    #[test]
    fn long_quiet_gaps_jump_the_cursor() {
        let mut w = EventWheel::new();
        w.push(SimTime(1), 1);
        w.push(SimTime(10_000_000), 2); // 10 virtual seconds out
        assert_eq!(w.pop().unwrap(), (SimTime(1), 1));
        assert_eq!(w.pop().unwrap(), (SimTime(10_000_000), 2));
        // Pushing just after the jump still works.
        w.push(SimTime(10_000_001), 3);
        assert_eq!(w.pop().unwrap(), (SimTime(10_000_001), 3));
    }
}
