//! Network substrate: the unreliable multicast channel automaton of the
//! thesis's system model (Figure 2-5), the Chapter 7 wire-cost model, and
//! the timer-wheel event scheduler the simulator runs on.

pub mod channel;
pub mod cost;
pub mod frame;
pub mod wheel;

pub use channel::{Channel, ChannelConfig, ChannelStats, Delivery, LinkProfile};
pub use cost::{CostModel, LinearCost};
pub use frame::Frame;
pub use wheel::{EventKey, EventWheel, WheelStats};
