//! Network substrate: the unreliable multicast channel automaton of the
//! thesis's system model (Figure 2-5) and the Chapter 7 wire-cost model.

pub mod channel;
pub mod cost;
pub mod frame;

pub use channel::{Channel, ChannelConfig, ChannelStats, Delivery, LinkProfile};
pub use cost::{CostModel, LinearCost};
pub use frame::Frame;
