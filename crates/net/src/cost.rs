//! Wire and CPU cost model (§7.1 of the thesis).
//!
//! Chapter 7 models the time to send a message between two nodes as a fixed
//! cost plus a per-byte cost, and the CPU time to digest or MAC a message
//! likewise as `fixed + per_byte * size`. Chapter 8.2 calibrates those
//! parameters on the testbed (600 MHz PIII, switched 100 Mb/s Ethernet).
//! The simulator charges virtual time using the same model; defaults below
//! are calibrated to the thesis's reported magnitudes so the regenerated
//! figures have the paper's shape. `bft-bench` re-calibrates the crypto
//! parameters from real Criterion measurements of our own primitives when
//! asked (E-8.3.5 studies sensitivity to these parameters).

use serde::{Deserialize, Serialize};

/// Cost parameters for one `fixed + per_byte * size` component.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinearCost {
    /// Fixed cost in microseconds.
    pub fixed_us: f64,
    /// Marginal cost per byte in microseconds.
    pub per_byte_us: f64,
}

impl LinearCost {
    /// Evaluates the model for a message of `bytes` bytes.
    pub fn eval(&self, bytes: usize) -> f64 {
        self.fixed_us + self.per_byte_us * bytes as f64
    }
}

/// The full cost model used by the simulator and the analytic model.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    /// CPU time to send a message (syscall + protocol stack), §7.1.3.
    pub send: LinearCost,
    /// CPU time to receive a message, §7.1.3.
    pub recv: LinearCost,
    /// Network transit time (wire + switch), §7.1.3.
    pub wire: LinearCost,
    /// MD5 digest computation, §7.1.1.
    pub digest: LinearCost,
    /// MAC computation over a fixed-size header, §7.1.2 (per-byte term is
    /// tiny because MACs cover only headers; kept for generality).
    pub mac: LinearCost,
    /// Time to generate a public-key signature (1024-bit modulus), §8.2.2.
    pub sign_us: f64,
    /// Time to verify a public-key signature (small public exponent).
    pub verify_us: f64,
    /// Service execution time per operation (workload parameter).
    pub execute_us: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        Self::thesis_testbed()
    }
}

impl CostModel {
    /// Parameters calibrated to the thesis testbed's reported magnitudes:
    /// ~40 µs per UDP send/receive pair for small messages, digests at
    /// ~25 MB/s-equivalent fixed+marginal costs, sub-microsecond MACs, and
    /// millisecond-scale signatures (the three-orders-of-magnitude gap of
    /// §8.2.2).
    pub fn thesis_testbed() -> Self {
        CostModel {
            send: LinearCost {
                fixed_us: 19.0,
                per_byte_us: 0.011,
            },
            recv: LinearCost {
                fixed_us: 21.0,
                per_byte_us: 0.012,
            },
            wire: LinearCost {
                fixed_us: 12.0,
                per_byte_us: 0.08, // 100 Mb/s ≈ 0.08 µs/byte.
            },
            digest: LinearCost {
                fixed_us: 1.0,
                per_byte_us: 0.004,
            },
            mac: LinearCost {
                fixed_us: 0.8,
                per_byte_us: 0.001,
            },
            sign_us: 42_000.0, // Rabin 1024-bit sign on the PIII (§8.2.2).
            verify_us: 620.0,  // Rabin verify is much cheaper.
            execute_us: 5.0,
        }
    }

    /// A zero-cost model: messages are free and instantaneous. Used by
    /// protocol-logic tests that only care about ordering, not timing.
    pub fn zero() -> Self {
        let z = LinearCost {
            fixed_us: 0.0,
            per_byte_us: 0.0,
        };
        CostModel {
            send: z,
            recv: z,
            wire: z,
            digest: z,
            mac: z,
            sign_us: 0.0,
            verify_us: 0.0,
            execute_us: 0.0,
        }
    }

    /// One-way latency for a message of `bytes` from send call to delivery,
    /// excluding receiver CPU (which the receiving node is charged).
    pub fn one_way_us(&self, bytes: usize) -> f64 {
        self.send.eval(bytes) + self.wire.eval(bytes)
    }

    /// Scales a component group for the §8.3.5 sensitivity analysis.
    pub fn scaled(mut self, crypto_factor: f64, wire_factor: f64) -> Self {
        self.digest.fixed_us *= crypto_factor;
        self.digest.per_byte_us *= crypto_factor;
        self.mac.fixed_us *= crypto_factor;
        self.mac.per_byte_us *= crypto_factor;
        self.sign_us *= crypto_factor;
        self.verify_us *= crypto_factor;
        self.wire.fixed_us *= wire_factor;
        self.wire.per_byte_us *= wire_factor;
        self.send.fixed_us *= wire_factor;
        self.send.per_byte_us *= wire_factor;
        self.recv.fixed_us *= wire_factor;
        self.recv.per_byte_us *= wire_factor;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_cost_eval() {
        let c = LinearCost {
            fixed_us: 10.0,
            per_byte_us: 0.5,
        };
        assert!((c.eval(0) - 10.0).abs() < 1e-9);
        assert!((c.eval(100) - 60.0).abs() < 1e-9);
    }

    #[test]
    fn signature_mac_gap_is_orders_of_magnitude() {
        let m = CostModel::thesis_testbed();
        let mac_cost = m.mac.eval(64);
        assert!(
            m.sign_us / mac_cost > 1000.0,
            "thesis: MACs are three orders of magnitude cheaper"
        );
    }

    #[test]
    fn one_way_grows_with_size() {
        let m = CostModel::thesis_testbed();
        assert!(m.one_way_us(4096) > m.one_way_us(64));
    }

    #[test]
    fn zero_model_is_free() {
        let m = CostModel::zero();
        assert_eq!(m.one_way_us(1 << 20), 0.0);
        assert_eq!(m.sign_us, 0.0);
    }

    #[test]
    fn scaling_affects_right_components() {
        let base = CostModel::thesis_testbed();
        let scaled = base.scaled(2.0, 1.0);
        assert!((scaled.sign_us - 2.0 * base.sign_us).abs() < 1e-9);
        assert!((scaled.wire.fixed_us - base.wire.fixed_us).abs() < 1e-9);
        let scaled = base.scaled(1.0, 3.0);
        assert!((scaled.wire.per_byte_us - 3.0 * base.wire.per_byte_us).abs() < 1e-9);
        assert!((scaled.mac.fixed_us - base.mac.fixed_us).abs() < 1e-9);
    }
}
