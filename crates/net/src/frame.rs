//! Shared-payload frames: the zero-copy unit of message fan-out.
//!
//! A multicast hands the same bytes to `n` destinations. Before this
//! abstraction the simulator deep-cloned the full [`Message`] (inline
//! request bodies included) once per destination at send time and again at
//! delivery time, and re-encoded the whole message every time it needed
//! the wire size. A [`Frame`] fixes all three costs: the message body is
//! reference-counted so an n-way broadcast clones a pointer, and the
//! encoded size is measured exactly once per send.

use bft_types::Message;
use std::rc::Rc;

/// One message prepared for delivery: a reference-counted body plus its
/// encoded size, shared by every destination of a fan-out.
#[derive(Clone, Debug)]
pub struct Frame {
    msg: Rc<Message>,
    wire_size: usize,
}

impl Frame {
    /// Wraps a message, measuring its encoded size once (in a pooled
    /// scratch buffer; no allocation).
    pub fn new(msg: Message) -> Self {
        let wire_size = msg.wire_size();
        Frame {
            msg: Rc::new(msg),
            wire_size,
        }
    }

    /// Encoded size in bytes, measured at construction.
    pub fn wire_size(&self) -> usize {
        self.wire_size
    }

    /// Read access to the shared message.
    pub fn message(&self) -> &Message {
        &self.msg
    }

    /// Number of frames currently sharing this message body.
    pub fn shares(&self) -> usize {
        Rc::strong_count(&self.msg)
    }

    /// Takes the message out of the frame. The last holder of a broadcast
    /// takes ownership without copying; earlier holders clone (a structural
    /// clone — `Bytes` payloads and cached digests are shared, not copied).
    pub fn into_message(self) -> Message {
        Rc::try_unwrap(self.msg).unwrap_or_else(|rc| (*rc).clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bft_types::{Auth, ClientId, Requester, Timestamp, Wire};
    use bytes::Bytes;

    fn request_msg() -> Message {
        Message::Request(bft_types::Request {
            requester: Requester::Client(ClientId(1)),
            timestamp: Timestamp(9),
            operation: Bytes::from(vec![0xa5; 300]),
            read_only: false,
            replier: None,
            auth: Auth::None,
            digest_memo: bft_types::DigestMemo::new(),
        })
    }

    #[test]
    fn size_measured_once_matches_encoding() {
        let msg = request_msg();
        let encoded_len = msg.encoded().len();
        let frame = Frame::new(msg);
        assert_eq!(frame.wire_size(), encoded_len);
    }

    #[test]
    fn clones_share_one_body() {
        let frame = Frame::new(request_msg());
        let copies: Vec<Frame> = (0..4).map(|_| frame.clone()).collect();
        assert_eq!(frame.shares(), 5);
        drop(copies);
        assert_eq!(frame.shares(), 1);
    }

    #[test]
    fn last_holder_takes_ownership_without_copy() {
        let frame = Frame::new(request_msg());
        let copy = frame.clone();
        let a = frame.into_message(); // Shared: clones structurally.
        let b = copy.into_message(); // Last holder: moves out.
        assert_eq!(a, b);
    }
}
