//! The unreliable multicast channel automaton (Figure 2-5 of the thesis).
//!
//! The formal system model says the network "may fail to deliver messages,
//! delay them, duplicate them, or deliver them out of order", and the
//! adversary may replay anything ever sent. This module implements that
//! automaton as a deterministic routing function: given a send event it
//! decides, using a seeded RNG and the fault configuration, when (and
//! whether, and how many times) each destination receives the message.
//! Timing comes from the [`crate::cost::CostModel`].

use crate::cost::CostModel;
use bft_fxhash::{FastMap, FastSet};
use bft_types::{NodeId, SimDuration, SimTime};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Fault-injection knobs for the channel.
#[derive(Clone, Debug)]
pub struct ChannelConfig {
    /// Probability a given delivery is dropped entirely.
    pub drop_prob: f64,
    /// Probability a delivery is duplicated (the copy arrives later).
    pub duplicate_prob: f64,
    /// Maximum uniform random jitter added to each delivery, in µs.
    /// Non-zero jitter produces out-of-order delivery.
    pub jitter_us: u64,
    /// Cost model used for baseline latency.
    pub cost: CostModel,
}

impl Default for ChannelConfig {
    fn default() -> Self {
        ChannelConfig {
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            jitter_us: 0,
            cost: CostModel::default(),
        }
    }
}

impl ChannelConfig {
    /// A reliable, deterministic channel (no loss, no duplication, no
    /// jitter) with the thesis cost model: the common-case testbed.
    pub fn reliable() -> Self {
        Self::default()
    }

    /// A lossy channel with the given drop probability and jitter.
    pub fn lossy(drop_prob: f64, jitter_us: u64) -> Self {
        ChannelConfig {
            drop_prob,
            duplicate_prob: drop_prob / 2.0,
            jitter_us,
            cost: CostModel::default(),
        }
    }
}

/// Fault overrides for one *directed* link, letting the adversary degrade
/// `a → b` while `b → a` stays clean (asymmetric loss is what makes timer
/// and retransmission bugs surface: one side keeps believing the other is
/// alive).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkProfile {
    /// Probability a delivery on this link is dropped.
    pub drop_prob: f64,
    /// Probability a delivery on this link is duplicated.
    pub duplicate_prob: f64,
    /// Maximum uniform random jitter on this link, in µs.
    pub jitter_us: u64,
    /// Fixed extra one-way latency on this link, in µs.
    pub extra_latency_us: u64,
}

impl LinkProfile {
    /// A clean link (used to explicitly override a lossy global config).
    pub fn clean() -> Self {
        LinkProfile {
            drop_prob: 0.0,
            duplicate_prob: 0.0,
            jitter_us: 0,
            extra_latency_us: 0,
        }
    }
}

/// One scheduled delivery produced by routing a send.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Delivery {
    /// The destination node.
    pub to: NodeId,
    /// When the message arrives at the destination.
    pub at: SimTime,
}

/// The multicast channel automaton.
///
/// All randomness comes from a seed, so identical runs produce identical
/// delivery schedules — the property every regression test relies on.
pub struct Channel {
    config: ChannelConfig,
    rng: StdRng,
    /// Pairs `(from, to)` currently partitioned (messages silently dropped).
    blocked: FastSet<(NodeId, NodeId)>,
    /// Nodes whose links are entirely down.
    isolated: FastSet<NodeId>,
    /// Per-link (directed) fault overrides; links not listed use the
    /// global configuration.
    links: FastMap<(NodeId, NodeId), LinkProfile>,
    /// Partition-group membership: nodes in different groups cannot talk.
    /// Nodes in no group talk to everyone (clients usually stay out).
    groups: FastMap<NodeId, u32>,
    /// Restart epoch per node: bumped by a crash so deliveries scheduled
    /// into the pre-crash incarnation's queues can be discarded.
    epochs: FastMap<NodeId, u64>,
    /// Counters for reports.
    stats: ChannelStats,
}

/// Aggregate channel statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ChannelStats {
    /// Messages handed to the channel (one per destination).
    pub sends: u64,
    /// Deliveries scheduled.
    pub delivered: u64,
    /// Deliveries dropped by loss or partition.
    pub dropped: u64,
    /// Extra duplicate deliveries scheduled.
    pub duplicated: u64,
    /// Total payload bytes scheduled for delivery.
    pub bytes: u64,
}

impl Channel {
    /// Creates a channel with the given configuration and RNG seed.
    pub fn new(config: ChannelConfig, seed: u64) -> Self {
        Channel {
            config,
            rng: StdRng::seed_from_u64(seed),
            blocked: FastSet::default(),
            isolated: FastSet::default(),
            links: FastMap::default(),
            groups: FastMap::default(),
            epochs: FastMap::default(),
            stats: ChannelStats::default(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> ChannelStats {
        self.stats
    }

    /// The configured cost model.
    pub fn cost(&self) -> &CostModel {
        &self.config.cost
    }

    /// Severs the directed link `from → to`.
    pub fn block(&mut self, from: NodeId, to: NodeId) {
        self.blocked.insert((from, to));
    }

    /// Restores the directed link `from → to`.
    pub fn unblock(&mut self, from: NodeId, to: NodeId) {
        self.blocked.remove(&(from, to));
    }

    /// Cuts a node off entirely (both directions).
    pub fn isolate(&mut self, node: NodeId) {
        self.isolated.insert(node);
    }

    /// Reconnects an isolated node.
    pub fn reconnect(&mut self, node: NodeId) {
        self.isolated.remove(&node);
    }

    /// Installs a fault profile on the directed link `from → to`.
    pub fn set_link(&mut self, from: NodeId, to: NodeId, profile: LinkProfile) {
        self.links.insert((from, to), profile);
    }

    /// Removes the fault profile from the directed link `from → to`.
    pub fn clear_link(&mut self, from: NodeId, to: NodeId) {
        self.links.remove(&(from, to));
    }

    /// Splits the network into groups: nodes in different groups cannot
    /// exchange messages until [`Channel::heal_partition`]. Nodes absent
    /// from every group remain connected to all groups.
    pub fn partition(&mut self, groups: &[Vec<NodeId>]) {
        self.groups.clear();
        for (g, members) in groups.iter().enumerate() {
            for &m in members {
                self.groups.insert(m, g as u32);
            }
        }
    }

    /// Removes any group partition.
    pub fn heal_partition(&mut self) {
        self.groups.clear();
    }

    /// Marks a node crashed: its restart epoch advances, so the harness
    /// can discard deliveries queued into the previous incarnation.
    /// Returns the new epoch.
    pub fn crash(&mut self, node: NodeId) -> u64 {
        let e = self.epochs.entry(node).or_insert(0);
        *e += 1;
        *e
    }

    /// The node's current restart epoch (0 if it never crashed).
    pub fn epoch(&self, node: NodeId) -> u64 {
        self.epochs.get(&node).copied().unwrap_or(0)
    }

    /// Returns true when the directed link is currently usable.
    pub fn link_up(&self, from: NodeId, to: NodeId) -> bool {
        if self.isolated.contains(&from)
            || self.isolated.contains(&to)
            || self.blocked.contains(&(from, to))
        {
            return false;
        }
        match (self.groups.get(&from), self.groups.get(&to)) {
            (Some(a), Some(b)) => a == b,
            _ => true,
        }
    }

    /// Routes a send of `bytes` bytes from `from` to each node in `to`,
    /// returning the scheduled deliveries.
    ///
    /// A multicast pays the sender-side CPU cost once (IP multicast, §6.1);
    /// per-destination wire time and faults are independent.
    pub fn route(
        &mut self,
        now: SimTime,
        from: NodeId,
        to: &[NodeId],
        bytes: usize,
    ) -> Vec<Delivery> {
        let mut out = Vec::with_capacity(to.len());
        let send_cpu = self.config.cost.send.eval(bytes);
        let wire = self.config.cost.wire.eval(bytes);
        for &dest in to {
            self.stats.sends += 1;
            if dest == from {
                // Loopback: immediate self-delivery, no wire, no faults.
                out.push(Delivery {
                    to: dest,
                    at: now + SimDuration::from_micros(send_cpu as u64),
                });
                self.stats.delivered += 1;
                self.stats.bytes += bytes as u64;
                continue;
            }
            if !self.link_up(from, dest) {
                self.stats.dropped += 1;
                continue;
            }
            // Per-link overrides shadow the global fault configuration.
            let (drop_prob, duplicate_prob, jitter_us, extra_latency_us) =
                match self.links.get(&(from, dest)) {
                    Some(l) => (
                        l.drop_prob,
                        l.duplicate_prob,
                        l.jitter_us,
                        l.extra_latency_us,
                    ),
                    None => (
                        self.config.drop_prob,
                        self.config.duplicate_prob,
                        self.config.jitter_us,
                        0,
                    ),
                };
            if drop_prob > 0.0 && self.rng.random_bool(drop_prob) {
                self.stats.dropped += 1;
                continue;
            }
            let jitter = if jitter_us > 0 {
                self.rng.random_range(0..=jitter_us)
            } else {
                0
            };
            let latency =
                SimDuration::from_micros((send_cpu + wire) as u64 + jitter + extra_latency_us);
            out.push(Delivery {
                to: dest,
                at: now + latency,
            });
            self.stats.delivered += 1;
            self.stats.bytes += bytes as u64;
            if duplicate_prob > 0.0 && self.rng.random_bool(duplicate_prob) {
                let extra = self.rng.random_range(1..=jitter_us.max(100));
                out.push(Delivery {
                    to: dest,
                    at: now + latency + SimDuration::from_micros(extra),
                });
                self.stats.duplicated += 1;
            }
        }
        out
    }

    /// Receiver-side CPU time for a message of `bytes` bytes.
    pub fn recv_cpu(&self, bytes: usize) -> SimDuration {
        SimDuration::from_micros(self.config.cost.recv.eval(bytes) as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bft_types::{ClientId, ReplicaId};

    fn r(i: u32) -> NodeId {
        NodeId::Replica(ReplicaId(i))
    }

    fn all(n: u32) -> Vec<NodeId> {
        (0..n).map(r).collect()
    }

    #[test]
    fn reliable_channel_delivers_everything() {
        let mut ch = Channel::new(ChannelConfig::reliable(), 1);
        let deliveries = ch.route(SimTime(0), r(0), &all(4), 100);
        assert_eq!(deliveries.len(), 4);
        assert_eq!(ch.stats().dropped, 0);
        // Non-self deliveries share the same deterministic latency.
        let t1 = deliveries.iter().find(|d| d.to == r(1)).unwrap().at;
        let t2 = deliveries.iter().find(|d| d.to == r(2)).unwrap().at;
        assert_eq!(t1, t2);
        assert!(t1 > SimTime(0));
    }

    #[test]
    fn self_delivery_is_fast_and_lossless() {
        let mut ch = Channel::new(ChannelConfig::lossy(1.0, 0), 1);
        let deliveries = ch.route(SimTime(0), r(0), &[r(0)], 100);
        assert_eq!(deliveries.len(), 1, "loopback never drops");
    }

    #[test]
    fn full_loss_drops_all_remote() {
        let mut ch = Channel::new(ChannelConfig::lossy(1.0, 0), 1);
        let deliveries = ch.route(SimTime(0), r(0), &all(4), 100);
        assert_eq!(deliveries.len(), 1); // Only the loopback.
        assert_eq!(ch.stats().dropped, 3);
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut ch = Channel::new(ChannelConfig::lossy(0.3, 500), seed);
            let mut log = Vec::new();
            for i in 0..50 {
                log.extend(ch.route(SimTime(i * 10), r(0), &all(4), 64));
            }
            log
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn partition_blocks_directed_link() {
        let mut ch = Channel::new(ChannelConfig::reliable(), 1);
        ch.block(r(0), r(1));
        let deliveries = ch.route(SimTime(0), r(0), &all(4), 10);
        assert!(deliveries.iter().all(|d| d.to != r(1)));
        assert!(deliveries.iter().any(|d| d.to == r(2)));
        // Reverse direction unaffected.
        let back = ch.route(SimTime(0), r(1), &[r(0)], 10);
        assert_eq!(back.len(), 1);
        ch.unblock(r(0), r(1));
        let again = ch.route(SimTime(0), r(0), &[r(1)], 10);
        assert_eq!(again.len(), 1);
    }

    #[test]
    fn isolation_cuts_both_directions() {
        let mut ch = Channel::new(ChannelConfig::reliable(), 1);
        ch.isolate(r(3));
        assert!(ch.route(SimTime(0), r(0), &[r(3)], 10).is_empty());
        assert!(ch.route(SimTime(0), r(3), &[r(0)], 10).is_empty());
        ch.reconnect(r(3));
        assert_eq!(ch.route(SimTime(0), r(0), &[r(3)], 10).len(), 1);
    }

    #[test]
    fn jitter_reorders() {
        let mut ch = Channel::new(
            ChannelConfig {
                jitter_us: 10_000,
                ..ChannelConfig::reliable()
            },
            3,
        );
        // Two sequential sends to the same destination can arrive swapped.
        let mut swapped = false;
        let mut t = 0u64;
        for _ in 0..200 {
            let d1 = ch.route(SimTime(t), r(0), &[r(1)], 10)[0].at;
            let d2 = ch.route(SimTime(t + 1), r(0), &[r(1)], 10)[0].at;
            if d2 < d1 {
                swapped = true;
                break;
            }
            t += 2;
        }
        assert!(swapped, "jitter should eventually reorder deliveries");
    }

    #[test]
    fn duplication_schedules_extra_copy() {
        let mut ch = Channel::new(
            ChannelConfig {
                duplicate_prob: 1.0,
                jitter_us: 10,
                ..ChannelConfig::reliable()
            },
            1,
        );
        let deliveries = ch.route(SimTime(0), r(0), &[r(1)], 10);
        assert_eq!(deliveries.len(), 2);
        assert_eq!(ch.stats().duplicated, 1);
        assert!(deliveries[1].at > deliveries[0].at);
    }

    #[test]
    fn larger_messages_take_longer() {
        let mut ch = Channel::new(ChannelConfig::reliable(), 1);
        let small = ch.route(SimTime(0), r(0), &[r(1)], 64)[0].at;
        let big = ch.route(SimTime(0), r(0), &[r(1)], 8192)[0].at;
        assert!(big > small);
    }

    #[test]
    fn group_partition_splits_and_heals() {
        let mut ch = Channel::new(ChannelConfig::reliable(), 1);
        ch.partition(&[vec![r(0), r(1)], vec![r(2), r(3)]]);
        // Within a group: up. Across groups: down. Unassigned: unrestricted.
        assert!(ch.link_up(r(0), r(1)));
        assert!(!ch.link_up(r(0), r(2)));
        assert!(!ch.link_up(r(3), r(1)));
        let c = NodeId::Client(ClientId(0));
        assert!(ch.link_up(c, r(0)) && ch.link_up(c, r(2)));
        let deliveries = ch.route(SimTime(0), r(0), &all(4), 10);
        assert_eq!(deliveries.len(), 2, "self + same-group peer only");
        ch.heal_partition();
        assert!(ch.link_up(r(0), r(2)));
        assert_eq!(ch.route(SimTime(0), r(0), &all(4), 10).len(), 4);
    }

    #[test]
    fn repartition_replaces_previous_groups() {
        let mut ch = Channel::new(ChannelConfig::reliable(), 1);
        ch.partition(&[vec![r(0)], vec![r(1), r(2), r(3)]]);
        assert!(!ch.link_up(r(0), r(1)));
        ch.partition(&[vec![r(0), r(1)], vec![r(2), r(3)]]);
        assert!(ch.link_up(r(0), r(1)), "new partition supersedes the old");
        assert!(!ch.link_up(r(1), r(2)));
    }

    #[test]
    fn link_profile_is_asymmetric() {
        let mut ch = Channel::new(ChannelConfig::reliable(), 1);
        ch.set_link(
            r(0),
            r(1),
            LinkProfile {
                drop_prob: 1.0,
                ..LinkProfile::clean()
            },
        );
        // Degraded direction drops; the reverse stays clean.
        assert!(ch.route(SimTime(0), r(0), &[r(1)], 10).is_empty());
        assert_eq!(ch.route(SimTime(0), r(1), &[r(0)], 10).len(), 1);
        ch.clear_link(r(0), r(1));
        assert_eq!(ch.route(SimTime(0), r(0), &[r(1)], 10).len(), 1);
    }

    #[test]
    fn link_profile_overrides_global_loss() {
        // Global config drops everything; a clean link override restores
        // the one link.
        let mut ch = Channel::new(ChannelConfig::lossy(1.0, 0), 1);
        ch.set_link(r(0), r(1), LinkProfile::clean());
        assert_eq!(ch.route(SimTime(0), r(0), &[r(1)], 10).len(), 1);
        assert!(ch.route(SimTime(0), r(0), &[r(2)], 10).is_empty());
    }

    #[test]
    fn link_extra_latency_delays_delivery() {
        let mut ch = Channel::new(ChannelConfig::reliable(), 1);
        let base = ch.route(SimTime(0), r(0), &[r(1)], 10)[0].at;
        ch.set_link(
            r(0),
            r(1),
            LinkProfile {
                extra_latency_us: 5_000,
                ..LinkProfile::clean()
            },
        );
        let slowed = ch.route(SimTime(0), r(0), &[r(1)], 10)[0].at;
        assert_eq!(slowed.0, base.0 + 5_000);
    }

    #[test]
    fn crash_bumps_epoch_per_node() {
        let mut ch = Channel::new(ChannelConfig::reliable(), 1);
        assert_eq!(ch.epoch(r(2)), 0);
        assert_eq!(ch.crash(r(2)), 1);
        assert_eq!(ch.crash(r(2)), 2);
        assert_eq!(ch.epoch(r(2)), 2);
        assert_eq!(ch.epoch(r(1)), 0, "other nodes unaffected");
    }

    #[test]
    fn clients_and_replicas_route_alike() {
        let mut ch = Channel::new(ChannelConfig::reliable(), 1);
        let c = NodeId::Client(ClientId(0));
        let deliveries = ch.route(SimTime(0), c, &all(4), 100);
        assert_eq!(deliveries.len(), 4);
    }
}
