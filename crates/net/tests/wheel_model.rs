//! Model-based check of the timer wheel: random interleavings of push /
//! cancel / pop are executed against both the [`EventWheel`] and a
//! reference `BinaryHeap<(time, push-order)>` model — the scheduler the
//! wheel replaced. The two must agree on every popped event, including
//! same-tick FIFO ties, window-boundary straddles, and events deep in the
//! overflow level that promote as the cursor advances.

use bft_net::wheel::{EventKey, EventWheel, NEAR_SLOTS};
use proptest::prelude::*;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// One scripted operation: `(kind, raw)` where `raw` seeds the operand.
type Op = (u8, u64);

fn ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec((any::<u8>(), any::<u64>()), 0..400)
}

struct Reference {
    heap: BinaryHeap<Reverse<(u64, u64)>>,
    canceled: HashSet<u64>,
}

impl Reference {
    fn pop(&mut self) -> Option<(u64, u64)> {
        while let Some(Reverse((at, seq))) = self.heap.pop() {
            if self.canceled.remove(&seq) {
                continue;
            }
            return Some((at, seq));
        }
        None
    }
}

proptest! {
    #[test]
    fn wheel_matches_reference_heap(script in ops()) {
        let mut wheel: EventWheel<u64> = EventWheel::new();
        let mut model = Reference { heap: BinaryHeap::new(), canceled: HashSet::new() };
        // Live events: (wheel key, model seq). Pushes append, cancels and
        // pops remove.
        let mut alive: Vec<(EventKey, u64)> = Vec::new();
        let mut next_seq = 0u64;
        let mut frontier = 0u64; // time of the last pop: pushes never precede it

        for (kind, raw) in script {
            match kind % 9 {
                // Near pushes, with frequent same-tick ties.
                0 | 1 => {
                    let at = frontier + (raw % 64);
                    let key = wheel.push(bft_types::SimTime(at), next_seq);
                    model.heap.push(Reverse((at, next_seq)));
                    alive.push((key, next_seq));
                    next_seq += 1;
                }
                // Exactly the current tick.
                2 => {
                    let key = wheel.push(bft_types::SimTime(frontier), next_seq);
                    model.heap.push(Reverse((frontier, next_seq)));
                    alive.push((key, next_seq));
                    next_seq += 1;
                }
                // Straddle the near/overflow window boundary.
                3 => {
                    let at = frontier + NEAR_SLOTS - 32 + (raw % 64);
                    let key = wheel.push(bft_types::SimTime(at), next_seq);
                    model.heap.push(Reverse((at, next_seq)));
                    alive.push((key, next_seq));
                    next_seq += 1;
                }
                // Anywhere out to 4 windows away (deep overflow, long gaps).
                4 => {
                    let at = frontier + (raw % (NEAR_SLOTS * 4));
                    let key = wheel.push(bft_types::SimTime(at), next_seq);
                    model.heap.push(Reverse((at, next_seq)));
                    alive.push((key, next_seq));
                    next_seq += 1;
                }
                // Cancel a random live event (in both structures).
                5 => {
                    if !alive.is_empty() {
                        let (key, seq) = alive.swap_remove(raw as usize % alive.len());
                        prop_assert!(wheel.cancel(key), "live key must cancel");
                        prop_assert!(!wheel.cancel(key), "second cancel is a no-op");
                        model.canceled.insert(seq);
                    }
                }
                // Peek and compare times; must not disturb future order.
                6 => {
                    let expect = model.pop();
                    if let Some((at, seq)) = expect {
                        model.heap.push(Reverse((at, seq)));
                    }
                    prop_assert_eq!(
                        wheel.next_at().map(|t| t.0),
                        expect.map(|(at, _)| at),
                        "peek diverged from the reference heap"
                    );
                }
                // Pop and compare.
                _ => {
                    let expect = model.pop();
                    let got = wheel.pop();
                    prop_assert_eq!(
                        got.map(|(at, seq)| (at.0, seq)),
                        expect,
                        "pop order diverged from the reference heap"
                    );
                    if let Some((at, seq)) = expect {
                        frontier = at;
                        alive.retain(|&(_, s)| s != seq);
                    }
                }
            }
            prop_assert_eq!(wheel.len(), model.heap.len() - model.canceled.len());
        }

        // Drain both completely: every remaining event, in order.
        loop {
            let expect = model.pop();
            let got = wheel.pop();
            prop_assert_eq!(got.map(|(at, seq)| (at.0, seq)), expect, "drain diverged");
            if expect.is_none() {
                break;
            }
        }
        prop_assert!(wheel.is_empty());
    }
}
