//! Proactive-recovery demo (BFT-PR, Chapter 4): an attacker corrupts a
//! replica's state pages; the watchdog-triggered recovery detects the
//! corruption with the hierarchical state check and repairs it by fetching
//! the divergent pages from the other replicas.
//!
//! Run with: `cargo run --example recovery_demo`

use bft_sim::{counter_cluster, ClusterConfig, Fault, OpGen};
use bft_statemachine::CounterService;
use bft_types::{ClientId, ReplicaId, Requester, SimDuration, SimTime};
use bytes::Bytes;

fn main() {
    let mut config = ClusterConfig::test(1, 1);
    config.replica.recovery.enabled = true;
    config.replica.recovery.watchdog_period = SimDuration::from_secs(60);
    config.replica.recovery.key_refresh_period = SimDuration::from_secs(5);
    let mut cluster = counter_cluster(config);

    // At t = 3 s the attacker scribbles over replica 1's counter page
    // without touching the stored digests (exactly the corruption the
    // thesis's state check is built to catch, §5.3.3).
    cluster.schedule_fault(
        SimTime(3_000_000),
        Fault::CorruptPage(ReplicaId(1), 0, Bytes::from(vec![0xBA; 256])),
    );
    // At t = 4 s replica 1's watchdog fires (simulating the periodic
    // proactive recovery; normally the staggered timer does this).
    cluster.schedule_fault(SimTime(4_000_000), Fault::ForceRecovery(ReplicaId(1)));

    cluster.set_workload(OpGen::fixed(
        Bytes::from(vec![CounterService::OP_INC]),
        false,
        40,
    ));
    cluster.run_until(SimTime(40_000_000));

    let r1 = cluster.replica(1);
    println!(
        "replica 1: recoveries completed = {}, pages re-fetched = {}, \
         still recovering = {}",
        r1.stats.recoveries_completed,
        r1.stats.pages_fetched,
        r1.is_recovering()
    );
    assert!(r1.stats.recoveries_completed >= 1, "recovery finished");
    assert!(r1.stats.pages_fetched >= 1, "the corrupt page was repaired");

    // The repaired replica agrees with the others again.
    let healthy = cluster
        .replica(0)
        .service()
        .value(Requester::Client(ClientId(0)));
    assert_eq!(
        cluster
            .replica(1)
            .service()
            .value(Requester::Client(ClientId(0))),
        healthy
    );
    println!("replica 1's state matches the group again (counter = {healthy})");
    println!(
        "session keys were refreshed by every replica when the recovery \
         request executed (§4.3.2)"
    );
}
