//! Prints a full behavioral fingerprint of two deterministic runs (lossy
//! and reliable) for cross-commit bit-identity checks.
//!
//! Modes:
//!   (no args)   print the fingerprint to stdout (pipe-friendly)
//!   --check     compare against tests/golden/fingerprint.txt (resolved
//!               via CARGO_MANIFEST_DIR, so any cwd works) and fail with
//!               a readable first-divergence report
//!   --bless     regenerate the golden file (only when a behavior change
//!               is intentional)
use bft_sim::{counter_cluster, Behavior, Cluster, ClusterConfig, Fault, OpGen};
use bft_statemachine::CounterService;
use bft_types::{ReplicaId, SimDuration, SimTime};
use bytes::Bytes;

fn fingerprint(cluster: &Cluster<CounterService>, clients: usize) -> String {
    let mut out = format!("{:?}\n", cluster.metrics);
    for r in 0..4 {
        let replica = cluster.replica(r);
        out.push_str(&format!(
            "r{r}: view={:?} last_exec={:?} digest={:?} journal={:?} stats={:?}\n",
            replica.view(),
            replica.last_executed(),
            replica.state_digest(),
            replica.journal,
            replica.stats,
        ));
    }
    for c in 0..clients {
        out.push_str(&format!("c{c}: {:?}\n", cluster.client_results(c)));
    }
    out
}

/// The full fingerprint text both modes work from.
fn generate() -> String {
    let mut out = String::new();
    for seed in [11u64, 42, 99] {
        let mut config = ClusterConfig::test(1, 2);
        config.seed = seed;
        config.channel = bft_net::ChannelConfig::lossy(0.05, 1_500);
        config.replica.view_change_timeout = SimDuration::from_millis(300);
        let mut cluster = counter_cluster(config);
        cluster.schedule_fault(
            SimTime(400_000),
            Fault::SetBehavior(ReplicaId(0), Behavior::Crashed),
        );
        cluster.set_workload(OpGen::fixed(
            Bytes::from(vec![CounterService::OP_INC]),
            false,
            5,
        ));
        cluster.run_to_completion(SimTime(300_000_000));
        out.push_str(&format!(
            "=== lossy seed {seed} ===\n{}\n",
            fingerprint(&cluster, 2)
        ));
    }
    let mut config = ClusterConfig::test(1, 4);
    config.seed = 7;
    let mut cluster = counter_cluster(config);
    cluster.set_workload(OpGen::fixed(
        Bytes::from(vec![CounterService::OP_INC]),
        false,
        20,
    ));
    assert!(cluster.run_to_completion(SimTime(600_000_000)));
    // Trailing newline matches the historical `println!` output, so the
    // committed golden stays byte-identical.
    out.push_str(&format!("=== reliable ===\n{}\n", fingerprint(&cluster, 4)));
    out
}

/// Golden file location, cwd-independent (this example belongs to the
/// workspace-root `pbft` package, so the manifest dir is the repo root).
const GOLDEN: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/fingerprint.txt");

/// One-liner printed whenever the golden needs intentional regeneration.
const BLESS_CMD: &str = "cargo run --release --example fingerprint -- --bless";

/// Compares the live fingerprint against the golden; on drift, reports
/// the first diverging line with context instead of a bare diff.
fn check() -> Result<(), String> {
    let want = std::fs::read_to_string(GOLDEN)
        .map_err(|e| format!("cannot read golden {GOLDEN}: {e}\nregenerate with: {BLESS_CMD}"))?;
    let got = generate();
    if got == want {
        return Ok(());
    }
    let mut report = String::from(
        "simulator fingerprint drifted from tests/golden/fingerprint.txt\n\
         \n\
         The fingerprint pins the simulator's bit-exact behavior (delivery order,\n\
         timer firing, protocol state). An unintended change here means a protocol\n\
         or engine regression; an intended behavior change must re-bless the golden:\n\
         \n",
    );
    report.push_str(&format!("    {BLESS_CMD}\n\n"));
    let got_lines: Vec<&str> = got.lines().collect();
    let want_lines: Vec<&str> = want.lines().collect();
    if got_lines.len() != want_lines.len() {
        report.push_str(&format!(
            "line count: golden {} vs regenerated {}\n",
            want_lines.len(),
            got_lines.len()
        ));
    }
    for (i, (g, w)) in got_lines.iter().zip(want_lines.iter()).enumerate() {
        if g != w {
            report.push_str(&format!(
                "first divergence at line {}:\n  golden:      {w}\n  regenerated: {g}\n",
                i + 1
            ));
            break;
        }
    }
    Err(report)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--bless") {
        std::fs::write(GOLDEN, generate()).expect("write golden");
        println!("blessed {GOLDEN}");
        return;
    }
    if args.iter().any(|a| a == "--check") {
        match check() {
            Ok(()) => println!("fingerprint matches tests/golden/fingerprint.txt"),
            Err(report) => {
                eprintln!("{report}");
                std::process::exit(1);
            }
        }
        return;
    }
    print!("{}", generate());
}
