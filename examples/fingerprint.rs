//! Prints a full behavioral fingerprint of two deterministic runs (lossy
//! and reliable) for cross-commit bit-identity checks.
use bft_sim::{counter_cluster, Behavior, Cluster, ClusterConfig, Fault, OpGen};
use bft_statemachine::CounterService;
use bft_types::{ReplicaId, SimDuration, SimTime};
use bytes::Bytes;

fn fingerprint(cluster: &Cluster<CounterService>, clients: usize) -> String {
    let mut out = format!("{:?}\n", cluster.metrics);
    for r in 0..4 {
        let replica = cluster.replica(r);
        out.push_str(&format!(
            "r{r}: view={:?} last_exec={:?} digest={:?} journal={:?} stats={:?}\n",
            replica.view(),
            replica.last_executed(),
            replica.state_digest(),
            replica.journal,
            replica.stats,
        ));
    }
    for c in 0..clients {
        out.push_str(&format!("c{c}: {:?}\n", cluster.client_results(c)));
    }
    out
}

fn main() {
    for seed in [11u64, 42, 99] {
        let mut config = ClusterConfig::test(1, 2);
        config.seed = seed;
        config.channel = bft_net::ChannelConfig::lossy(0.05, 1_500);
        config.replica.view_change_timeout = SimDuration::from_millis(300);
        let mut cluster = counter_cluster(config);
        cluster.schedule_fault(
            SimTime(400_000),
            Fault::SetBehavior(ReplicaId(0), Behavior::Crashed),
        );
        cluster.set_workload(OpGen::fixed(
            Bytes::from(vec![CounterService::OP_INC]),
            false,
            5,
        ));
        cluster.run_to_completion(SimTime(300_000_000));
        println!("=== lossy seed {seed} ===\n{}", fingerprint(&cluster, 2));
    }
    let mut config = ClusterConfig::test(1, 4);
    config.seed = 7;
    let mut cluster = counter_cluster(config);
    cluster.set_workload(OpGen::fixed(
        Bytes::from(vec![CounterService::OP_INC]),
        false,
        20,
    ));
    assert!(cluster.run_to_completion(SimTime(600_000_000)));
    println!("=== reliable ===\n{}", fingerprint(&cluster, 4));
}
