//! Quickstart: replicate a counter service across four simulated replicas,
//! run client operations through the full BFT protocol, and check that the
//! replicas agree.
//!
//! Run with: `cargo run --example quickstart`

use bft_sim::{counter_cluster, ClusterConfig, OpGen};
use bft_statemachine::CounterService;
use bft_types::{ClientId, Requester, SimTime};
use bytes::Bytes;

fn main() {
    // A cluster of n = 4 replicas tolerating f = 1 Byzantine fault, with
    // two clients. Everything is deterministic given the seed.
    let mut cluster = counter_cluster(ClusterConfig::test(1, 2));

    // Each client increments its counter ten times, closed loop.
    cluster.set_workload(OpGen::fixed(
        Bytes::from(vec![CounterService::OP_INC]),
        false, // read-write
        10,
    ));

    // Run the simulation (virtual time; deadline is a safety net).
    let done = cluster.run_to_completion(SimTime(60_000_000));
    assert!(done, "all operations completed");

    println!("completed {} operations", cluster.metrics.ops_completed);
    println!(
        "mean latency: {:.0} us (virtual)",
        cluster.metrics.latency.mean_us()
    );

    // Every client observed exactly-once semantics: the final counter is 10.
    for c in 0..2u32 {
        let results = cluster.client_results(c as usize);
        let last = u64::from_le_bytes(results.last().unwrap().1.as_ref().try_into().unwrap());
        println!("client {c}: final counter = {last}");
        assert_eq!(last, 10);
    }

    // Every replica converged to the same state (same state digest), and
    // the service values agree.
    let digest = cluster.replica(0).state_digest();
    for r in 1..4 {
        assert_eq!(cluster.replica(r).state_digest(), digest);
        assert_eq!(
            cluster
                .replica(r)
                .service()
                .value(Requester::Client(ClientId(0))),
            10
        );
    }
    println!("all 4 replicas agree: state digest {digest}");
}
