//! A replicated key-value store that keeps serving correct data while one
//! replica lies in its replies and another sends corrupted votes.
//!
//! Run with: `cargo run --example kv_store`

use bft_sim::harness::Driver;
use bft_sim::{Behavior, Cluster, ClusterConfig};
use bft_statemachine::KvService;
use bft_types::{ClientId, ReplicaId, SimTime};
use bytes::Bytes;

/// Scripted driver: writes ten keys, then reads them back.
struct KvDriver {
    step: usize,
    failures: std::rc::Rc<std::cell::Cell<u32>>,
}

impl Driver for KvDriver {
    fn next(&mut self, last: Option<&Bytes>) -> Option<(Bytes, bool)> {
        // Validate the previous read against the expected value.
        if self.step > 10 {
            let read_idx = self.step - 11;
            let expect = format!("value-{read_idx}");
            if last
                .map(|b| b.as_ref() != expect.as_bytes())
                .unwrap_or(true)
            {
                self.failures.set(self.failures.get() + 1);
            }
        }
        let (op, read_only) = if self.step < 10 {
            let key = format!("key-{}", self.step);
            let value = format!("value-{}", self.step);
            (KvService::op_put(key.as_bytes(), value.as_bytes()), false)
        } else if self.step < 20 {
            let key = format!("key-{}", self.step - 10);
            (KvService::op_get(key.as_bytes()), true)
        } else {
            return None;
        };
        self.step += 1;
        Some((op, read_only))
    }
}

fn main() {
    let config = ClusterConfig::test(1, 1);
    let services = (0..4).map(|_| KvService::new(32)).collect();
    let mut cluster: Cluster<KvService> = Cluster::new(config, services);

    // One replica forges its replies; another corrupts its protocol votes.
    // With f = 1 tolerated and only... well, two misbehaving replicas is
    // beyond the f = 1 bound for safety in general, but these particular
    // behaviors are masked independently: lies are outvoted by the reply
    // certificate, corrupt votes never assemble certificates.
    cluster.set_behavior(ReplicaId(3), Behavior::LyingReplies);
    cluster.set_behavior(ReplicaId(2), Behavior::CorruptVotes);

    let failures = std::rc::Rc::new(std::cell::Cell::new(0));
    cluster.set_driver(
        ClientId(0),
        Box::new(KvDriver {
            step: 0,
            failures: std::rc::Rc::clone(&failures),
        }),
    );
    let done = cluster.run_to_completion(SimTime(120_000_000));
    assert!(done, "workload completed");
    assert_eq!(failures.get(), 0, "no read returned forged data");

    println!(
        "20 operations done; {} reads verified against writes; forged \
         replies from r3 were outvoted",
        10
    );
    println!(
        "mean latency {:.0} us; retransmissions {}",
        cluster.metrics.latency.mean_us(),
        cluster.metrics.ops_retransmitted
    );
}
