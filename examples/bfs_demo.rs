//! BFS demo: drive the Byzantine-fault-tolerant NFS-shaped file service
//! through the replication protocol — mkdir, create, write, read, rename —
//! and show the replicas' file systems staying identical.
//!
//! Run with: `cargo run --example bfs_demo`

use bfs::{BfsService, NfsOp, NfsReply, ROOT_INO};
use bft_sim::harness::Driver;
use bft_sim::{Cluster, ClusterConfig};
use bft_types::{ClientId, SimTime};
use bytes::Bytes;

/// A small scripted session against the file service.
struct Session {
    step: usize,
    dir: u64,
    file: u64,
}

impl Driver for Session {
    fn next(&mut self, last: Option<&Bytes>) -> Option<(Bytes, bool)> {
        // Record handles returned by creates.
        if let Some(last) = last {
            match (self.step, NfsReply::decode(last).expect("reply")) {
                (1, NfsReply::Handle(h)) => self.dir = h,
                (2, NfsReply::Handle(h)) => self.file = h,
                (4, NfsReply::Data(d)) => {
                    assert_eq!(d, b"hello, byzantine world");
                    println!("read back: {}", String::from_utf8_lossy(&d));
                }
                (6, NfsReply::Entries(es)) => {
                    let names: Vec<&str> = es.iter().map(|(n, _)| n.as_str()).collect();
                    println!("directory listing: {names:?}");
                    assert_eq!(names, ["renamed.txt"]);
                }
                (_, NfsReply::Err(e)) => panic!("op failed: {e}"),
                _ => {}
            }
        }
        let op = match self.step {
            0 => NfsOp::Mkdir(ROOT_INO.0, "docs".into(), 0o755),
            1 => NfsOp::Create(self.dir, "draft.txt".into(), 0o644),
            2 => NfsOp::Write(self.file, 0, b"hello, byzantine world".to_vec()),
            3 => NfsOp::Read(self.file, 0, 100),
            4 => NfsOp::Rename(self.dir, "draft.txt".into(), self.dir, "renamed.txt".into()),
            5 => NfsOp::ReadDir(self.dir),
            6 => NfsOp::GetAttr(self.file),
            _ => return None,
        };
        let ro = op.is_read_only();
        self.step += 1;
        Some((op.encode(), ro))
    }
}

fn main() {
    let config = ClusterConfig::test(1, 1);
    let services = (0..4).map(|_| BfsService::new(32)).collect();
    let mut cluster: Cluster<BfsService> = Cluster::new(config, services);
    cluster.set_driver(
        ClientId(0),
        Box::new(Session {
            step: 0,
            dir: 0,
            file: 0,
        }),
    );
    assert!(cluster.run_to_completion(SimTime(60_000_000)));

    // All replicas hold identical file systems.
    let fs0 = cluster.replica(0).service().fs();
    for r in 1..4 {
        assert_eq!(cluster.replica(r).service().fs(), fs0, "replica {r}");
    }
    let file = fs0.resolve("/docs/renamed.txt").expect("file exists");
    let attrs = fs0.getattr(file).expect("attrs");
    println!(
        "all replicas agree: /docs/renamed.txt has {} bytes, mtime {}",
        attrs.size, attrs.mtime
    );
}
