//! View-change demo: crash the primary mid-run and watch the backups elect
//! a new one and finish the workload (§2.3.5 / §3.2.4).
//!
//! Run with: `cargo run --example view_change_demo`

use bft_sim::{counter_cluster, Behavior, ClusterConfig, Fault, OpGen};
use bft_statemachine::CounterService;
use bft_types::{ReplicaId, SimDuration, SimTime};
use bytes::Bytes;

fn main() {
    let mut config = ClusterConfig::test(1, 2);
    config.replica.view_change_timeout = SimDuration::from_millis(150);
    let mut cluster = counter_cluster(config);

    // Crash replica 0 (the view-0 primary) one millisecond in.
    cluster.schedule_fault(
        SimTime(1_000),
        Fault::SetBehavior(ReplicaId(0), Behavior::Crashed),
    );

    cluster.set_workload(OpGen::fixed(
        Bytes::from(vec![CounterService::OP_INC]),
        false,
        20,
    ));
    let done = cluster.run_to_completion(SimTime(120_000_000));
    assert!(done, "operations completed despite the crashed primary");

    let r1 = cluster.replica(1);
    println!(
        "replica 1: view {} (primary is now {}), view changes started: {}",
        r1.view(),
        r1.primary(),
        r1.stats.view_changes_started
    );
    assert!(r1.view().0 >= 1, "the view advanced past the dead primary");
    assert!(r1.view_is_active());

    // The three survivors agree on the final state.
    let digest = cluster.replica(1).state_digest();
    for r in 2..4 {
        assert_eq!(cluster.replica(r).state_digest(), digest);
    }
    println!(
        "all correct replicas agree after the view change; {} ops done, \
         mean latency {:.0} us",
        cluster.metrics.ops_completed,
        cluster.metrics.latency.mean_us()
    );
}
