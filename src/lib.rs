//! # pbft — Practical Byzantine Fault Tolerance, reproduced in Rust
//!
//! A complete from-scratch reproduction of Castro & Liskov's *Practical
//! Byzantine Fault Tolerance* (OSDI '99; Castro's MIT thesis, 2001): the
//! BFT state-machine replication library in its three variants (BFT-PK,
//! BFT, BFT-PR), every substrate it depends on, the BFS file service built
//! on top, the Chapter 7 analytic performance model, and a benchmark
//! harness that regenerates the shape of every Chapter 8 evaluation result.
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`crypto`] — MD5, HMAC MACs, authenticators, big-integer signatures,
//!   AdHash, and the simulated secure co-processor.
//! * [`types`] — identifiers, protocol messages, wire encoding.
//! * [`net`] — the unreliable multicast channel automaton and wire costs.
//! * [`statemachine`] — the deterministic service trait and samples.
//! * [`core`] — the replication protocol: replicas and client proxies.
//! * [`sim`] — the deterministic discrete-event cluster harness.
//! * [`runtime`] — the real-network runtime: the same state machines
//!   over framed TCP with monotonic-clock timers (`pbft-node` /
//!   `pbft-client`).
//! * [`bfs`] — the Byzantine-fault-tolerant NFS-shaped file service.
//! * [`model`] — the analytic latency/throughput model.
//!
//! # Examples
//!
//! ```
//! use pbft::sim::{counter_cluster, ClusterConfig, OpGen};
//! use pbft::statemachine::CounterService;
//! use pbft::types::SimTime;
//!
//! let mut cluster = counter_cluster(ClusterConfig::test(1, 1));
//! cluster.set_workload(OpGen::fixed(
//!     bytes::Bytes::from(vec![CounterService::OP_INC]),
//!     false,
//!     3,
//! ));
//! assert!(cluster.run_to_completion(SimTime(10_000_000)));
//! assert_eq!(cluster.metrics.ops_completed, 3);
//! ```

pub use bfs;
pub use bft_core as core;
pub use bft_crypto as crypto;
pub use bft_model as model;
pub use bft_net as net;
pub use bft_runtime as runtime;
pub use bft_sim as sim;
pub use bft_statemachine as statemachine;
pub use bft_types as types;
